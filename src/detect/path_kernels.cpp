#include "detect/path_kernels.h"

#include "parallel/hot_path.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>
#include <complex>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "perfmodel/fixed_point.h"

namespace flexcore::detect {

template <typename T>
void PathPlanT<T>::compile_channel(const linalg::CMat& r,
                                   const modulation::Constellation& c,
                                   bool with_diag_inverse) {
  const std::size_t nt = r.cols();
  if (nt == 0 || nt > kMaxLevels) {
    throw std::invalid_argument("PathPlan: need 1 <= Nt <= 32");
  }
  nt_ = nt;
  q_ = c.order();
  side_ = c.side();
  scale_ = c.scale();
  inv_scale_ = c.inv_scale();
  c_ = &c;

  r_.resize(nt * nt);
  for (std::size_t i = 0; i < nt; ++i) {
    for (std::size_t j = 0; j < nt; ++j) r_.set(i * nt + j, r(i, j));
  }

  // rx[i][x] = R(i,i) * point(x), the same double product the scalar
  // detectors tabulate — computed here so the plan is self-contained, and
  // bit-identical because it is the identical operation on identical
  // values (guarded by tests/kernel_test.cpp).
  const std::size_t q = static_cast<std::size_t>(q_);
  rx_.resize(nt * q);
  for (std::size_t i = 0; i < nt; ++i) {
    const linalg::cplx rii = r(i, i);
    for (std::size_t x = 0; x < q; ++x) {
      rx_.set(i * q + x, rii * c.point(static_cast<int>(x)));
    }
  }

  pt_.assign(c.points());

  if (with_diag_inverse) {
    rdi_.resize(nt);
    for (std::size_t i = 0; i < nt; ++i) {
      // flexcore-lint: allow-next-line(HP005) plan-compile time, not per-path
      rdi_.set(i, linalg::cplx{1.0, 0.0} / r(i, i));
    }
  } else {
    rdi_.clear();
  }
}

template <typename T>
void PathPlanT<T>::compile_flexcore(const linalg::CMat& r,
                                    std::span<const core::RankedPath> paths,
                                    const modulation::Constellation& c,
                                    const core::OrderingLut& lut,
                                    bool exact_ordering,
                                    core::InvalidEntryPolicy policy) {
  compile_channel(r, c, /*with_diag_inverse=*/true);
  num_paths_ = paths.size();
  lut_ = &lut;
  policy_ = policy;
  full_levels_ = 0;
  powq_.clear();
  mode_ = exact_ordering ? Mode::kExactRank
          : policy == core::InvalidEntryPolicy::kDeactivate
              ? Mode::kLutRank
              : Mode::kGenericRank;

  // Selector table, path-major-blocked.  Tail lanes of the last block get
  // rank 1; their metrics are computed and discarded, never emitted.
  const std::size_t nb = linalg::simd_blocks(num_paths_);
  ranks_.assign(nb * nt_ * kLanes, 1);
  for (std::size_t p = 0; p < num_paths_; ++p) {
    const core::PositionVector& pv = paths[p].p;
    assert(pv.size() == nt_);
    const std::size_t b = p / kLanes;
    const std::size_t l = p % kLanes;
    for (std::size_t i = 0; i < nt_; ++i) {
      ranks_[(b * nt_ + i) * kLanes + l] = pv[i];
    }
  }

  // Rank-1 uniformity flags: a most-promising path set is rank 1 at almost
  // every (path, level), and the LUT's first entry is the slicer center
  // itself (offset (0,0), invariant under all 8 transforms).  Where a whole
  // block agrees, the kernel skips the residual/triangle math and the table
  // gather entirely — only when the base order really starts at the center,
  // which compile verifies rather than assumes.
  all_rank_one_.assign(nb * nt_, 0);
  const auto& base0 = lut.base_order().front();
  if (mode_ == Mode::kLutRank && base0.di == 0 && base0.dq == 0) {
    for (std::size_t b = 0; b < nb; ++b) {
      for (std::size_t i = 0; i < nt_; ++i) {
        const std::int32_t* lane = ranks_.data() + (b * nt_ + i) * kLanes;
        bool all_one = true;
        for (std::size_t l = 0; l < kLanes; ++l) all_one &= lane[l] == 1;
        all_rank_one_[b * nt_ + i] = all_one;
      }
    }
  }

  // Expand the canonical triangle order under all 8 dihedral transforms so
  // the per-lane lookup needs no reflection logic — the same swap-then-flip
  // sequence OrderingLut::kth_symbol applies per entry.
  if (mode_ == Mode::kLutRank) {
    const auto& base = lut.base_order();
    const std::size_t q = base.size();
    lut_di_.resize(8 * q);
    lut_dq_.resize(8 * q);
    for (int t = 0; t < 8; ++t) {
      const bool swap_axes = (t & 4) != 0;
      const bool flip_u = (t & 2) != 0;
      const bool flip_v = (t & 1) != 0;
      for (std::size_t k = 0; k < q; ++k) {
        int di = base[k].di;
        int dq = base[k].dq;
        if (swap_axes) std::swap(di, dq);
        if (flip_u) di = -di;
        if (flip_v) dq = -dq;
        lut_di_[static_cast<std::size_t>(t) * q + k] =
            static_cast<std::int8_t>(di);
        lut_dq_[static_cast<std::size_t>(t) * q + k] =
            static_cast<std::int8_t>(dq);
      }
    }
  }
}

template <typename T>
void PathPlanT<T>::compile_fcsd(const linalg::CMat& r, std::size_t full_levels,
                                const modulation::Constellation& c) {
  if (full_levels > r.cols()) {
    throw std::invalid_argument("PathPlan: fcsd full_levels > Nt");
  }
  compile_channel(r, c, /*with_diag_inverse=*/false);
  mode_ = Mode::kFcsd;
  full_levels_ = full_levels;
  lut_ = nullptr;
  ranks_.clear();
  powq_.resize(full_levels);
  num_paths_ = 1;
  for (std::size_t d = 0; d < full_levels; ++d) {
    powq_[d] = num_paths_;
    num_paths_ *= static_cast<std::size_t>(q_);
  }
}

namespace {

/// Round to nearest, ties away from zero — std::lround's rule — as
/// branch-light, auto-vectorizable arithmetic (no libm call).  Matches
/// lround bit-for-bit on every value the detectors can produce: the 1e9
/// clamp only engages for effective points astronomically far outside any
/// constellation, where both implementations land on an out-of-range axis
/// index and the entry deactivates either way.
inline int round_half_away(double a) noexcept {
  // !(a < 1e9) also catches NaN (a rank-deficient channel propagates NaN
  // through 1/R(i,i)): it folds to the upper clamp — defined behavior,
  // lands outside any constellation, and the entry deactivates, where
  // casting NaN to int would be UB.
  const double c = !(a < 1e9) ? 1e9 : (a < -1e9 ? -1e9 : a);
  const int t = static_cast<int>(c);  // trunc toward zero
  const double f = c - static_cast<double>(t);
  return t + (f >= 0.5 ? 1 : 0) - (f <= -0.5 ? 1 : 0);
}

// The lane-block register type of the kernel.  GCC/Clang vector extensions
// pin the codegen: element-wise IEEE ops on kLanes-wide values, lowered to
// whatever SIMD width the target has — no auto-vectorizer guesswork (the
// loop vectorizer likes to fuse the j-recurrence across iterations, which
// costs a storm of cross-lane shuffles).  Element-wise semantics are
// identical to the scalar formulas, so bit-identity is untouched.  The
// fallback struct keeps other compilers correct, just slower.
#if defined(__GNUC__) || defined(__clang__)
template <typename T, std::size_t N>
struct LaneVecOf {
  typedef T type __attribute__((vector_size(sizeof(T) * N)));
};
#else
template <typename T, std::size_t N>
struct LaneVecFallback {
  T v[N];
  T operator[](std::size_t i) const { return v[i]; }
  T& operator[](std::size_t i) { return v[i]; }
  friend LaneVecFallback operator*(const LaneVecFallback& a,
                                   const LaneVecFallback& b) {
    LaneVecFallback r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  friend LaneVecFallback operator+(const LaneVecFallback& a,
                                   const LaneVecFallback& b) {
    LaneVecFallback r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  friend LaneVecFallback operator-(const LaneVecFallback& a,
                                   const LaneVecFallback& b) {
    LaneVecFallback r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
  }
  LaneVecFallback& operator-=(const LaneVecFallback& o) {
    for (std::size_t i = 0; i < N; ++i) v[i] -= o.v[i];
    return *this;
  }
};
template <typename T, std::size_t N>
struct LaneVecOf {
  using type = LaneVecFallback<T, N>;
};
#endif

/// Broadcast a scalar across all lanes.
template <typename V, typename T>
inline V splat(T s) noexcept {
  V v{};
  for (std::size_t i = 0; i < sizeof(V) / sizeof(T); ++i) v[i] = s;
  return v;
}

}  // namespace

template <typename T>
FLEXCORE_HOT_PATH
void PathPlanT<T>::eval_block(const linalg::cplx* ybar, std::size_t block,
                              double out[kLanes]) const {
  const std::size_t nt = nt_;
  const std::size_t q = static_cast<std::size_t>(q_);
  const std::size_t path0 = block * kLanes;

  // Lane-parallel walk state: lane = path.  Same per-level recurrence as
  // the scalar path_metric, with the complex arithmetic written split over
  // LaneVec registers (element-wise, branch-free).
  using VecT = typename LaneVecOf<T, kLanes>::type;
  VecT br, bi;
  VecT er{}, ei{};
  VecT acc{};
  VecT sre[kMaxLevels], sim[kMaxLevels];
  std::int32_t xs[kLanes];
  std::uint8_t dead[kLanes] = {};

  const std::int32_t* sel_base =
      mode_ == Mode::kFcsd ? nullptr : ranks_.data() + block * nt * kLanes;

  for (std::size_t ii = 0; ii < nt; ++ii) {
    const std::size_t i = nt - 1 - ii;

    // b = ybar[i] - sum_{j>i} R(i,j) * s[j]  (Eq. 5 numerator), all lanes.
    br = splat<VecT>(static_cast<T>(ybar[i].real()));
    bi = splat<VecT>(static_cast<T>(ybar[i].imag()));
    const T* rrow_re = r_.re.data() + i * nt;
    const T* rrow_im = r_.im.data() + i * nt;
    for (std::size_t j = i + 1; j < nt; ++j) {
      const VecT rr = splat<VecT>(rrow_re[j]);
      const VecT rj = splat<VecT>(rrow_im[j]);
      br -= rr * sre[j] - rj * sim[j];
      bi -= rr * sim[j] + rj * sre[j];
    }

    // Per-lane symbol decision (the data-dependent gather step).
    if (mode_ == Mode::kFcsd) {
      if (ii < full_levels_) {
        // Enumerated level: base-|Q| digit ii of the path index.
        const std::size_t pw = powq_[ii];
        for (std::size_t l = 0; l < kLanes; ++l) {
          xs[l] = static_cast<std::int32_t>(((path0 + l) / pw) % q);
        }
      } else {
        // Greedy extension: nearest point to b / R(i,i) — the complex
        // division stays std::complex (the scalar kernel's exact library
        // semantics), the slice is the same round-and-clamp inlined.
        // flexcore-lint: allow-next-line(HP005) scalar-exact library division
        const std::complex<T> rd{rrow_re[i], rrow_im[i]};
        for (std::size_t l = 0; l < kLanes; ++l) {
          // flexcore-lint: allow-next-line(HP005) scalar-exact library division
          const std::complex<T> bq = std::complex<T>{br[l], bi[l]} / rd;
          const double qr = static_cast<double>(bq.real());
          const double qi = static_cast<double>(bq.imag());
          const int ir = std::clamp(
              round_half_away((qr * inv_scale_ + (side_ - 1)) / 2.0), 0,
              side_ - 1);
          const int iq = std::clamp(
              round_half_away((qi * inv_scale_ + (side_ - 1)) / 2.0), 0,
              side_ - 1);
          xs[l] = ir * side_ + iq;
        }
      }
    } else {
      // eff = b * (1/R(i,i)): the naive complex product, as std::complex
      // multiplication evaluates for finite values.
      const VecT rdr = splat<VecT>(rdi_.re[i]);
      const VecT rdj = splat<VecT>(rdi_.im[i]);
      er = br * rdr - bi * rdj;
      ei = br * rdj + bi * rdr;
      const std::int32_t* sel = sel_base + i * kLanes;
      if (mode_ == Mode::kLutRank) {
        // Branch-light split lookup, phased: (A) the slicer prescaling per
        // lane (the glue stays double and uses the constellation's shared
        // inv_scale(), so the fp64 tier reproduces OrderingLut::kth_symbol
        // exactly), then either the rank-1 fast path (rounded slicer
        // center + bounds check, no residual/triangle work — most
        // block-levels of a most-promising path set) or the general path
        // (B: center rounding + triangle classification, C: per-lane
        // table gathers and bounds checks).
        double ar[kLanes], aq[kLanes];
        for (std::size_t l = 0; l < kLanes; ++l) {
          ar[l] = (static_cast<double>(er[l]) * inv_scale_ + (side_ - 1)) / 2.0;
          aq[l] = (static_cast<double>(ei[l]) * inv_scale_ + (side_ - 1)) / 2.0;
        }
        if (all_rank_one_[block * nt + i]) {
          for (std::size_t l = 0; l < kLanes; ++l) {
            const std::int32_t cil = round_half_away(ar[l]);
            const std::int32_t cql = round_half_away(aq[l]);
            const bool valid = !dead[l] && cil >= 0 && cil < side_ &&
                               cql >= 0 && cql < side_;
            xs[l] = valid ? cil * side_ + cql : 0;
            dead[l] = valid ? 0 : 1;
          }
        } else {
          std::int32_t ci[kLanes], cq[kLanes], tri[kLanes];
          for (std::size_t l = 0; l < kLanes; ++l) {
            const int cil = round_half_away(ar[l]);
            const int cql = round_half_away(aq[l]);
            const double u = static_cast<double>(er[l]) -
                             (2.0 * cil - (side_ - 1)) * scale_;
            const double v = static_cast<double>(ei[l]) -
                             (2.0 * cql - (side_ - 1)) * scale_;
            const double au = std::fabs(u);
            const double av = std::fabs(v);
            ci[l] = cil;
            cq[l] = cql;
            tri[l] = (av > au ? 4 : 0) | (u < 0.0 ? 2 : 0) | (v < 0.0 ? 1 : 0);
          }
          for (std::size_t l = 0; l < kLanes; ++l) {
            if (dead[l]) {
              xs[l] = 0;  // lane already deactivated; keep the walk defined
              continue;
            }
            const std::int32_t k = sel[l];
            int x = -1;
            if (k >= 1 && k <= q_) {
              const std::size_t e =
                  static_cast<std::size_t>(tri[l]) * q +
                  static_cast<std::size_t>(k - 1);
              const int ai = ci[l] + lut_di_[e];
              const int aq2 = cq[l] + lut_dq_[e];
              if (ai >= 0 && ai < side_ && aq2 >= 0 && aq2 < side_) {
                x = ai * side_ + aq2;
              }
            }
            if (x < 0) {
              dead[l] = 1;
              xs[l] = 0;
            } else {
              xs[l] = x;
            }
          }
        }
      } else {
        // Ablation modes: per-lane calls into the reference lookups.
        for (std::size_t l = 0; l < kLanes; ++l) {
          if (dead[l]) {
            xs[l] = 0;
            continue;
          }
          const linalg::cplx eff{static_cast<double>(er[l]),
                                 static_cast<double>(ei[l])};
          const int x = mode_ == Mode::kGenericRank
                            ? lut_->kth_symbol(eff, sel[l], policy_)
                            : c_->kth_nearest_exact(eff, sel[l]);
          if (x < 0) {
            dead[l] = 1;
            xs[l] = 0;
          } else {
            xs[l] = x;
          }
        }
      }
    }

    // Decided point + partial Euclidean distance, all lanes.
    const T* rx_re_row = rx_.re.data() + i * q;
    const T* rx_im_row = rx_.im.data() + i * q;
    for (std::size_t l = 0; l < kLanes; ++l) {
      const std::int32_t x = xs[l];
      sre[i][l] = pt_.re[static_cast<std::size_t>(x)];
      sim[i][l] = pt_.im[static_cast<std::size_t>(x)];
      const T dr = br[l] - rx_re_row[static_cast<std::size_t>(x)];
      const T dj = bi[l] - rx_im_row[static_cast<std::size_t>(x)];
      acc[l] += dr * dr + dj * dj;
    }
  }

  for (std::size_t l = 0; l < kLanes; ++l) {
    out[l] = dead[l] ? std::numeric_limits<double>::infinity()
                     : static_cast<double>(acc[l]);
  }
}

template <typename T>
FLEXCORE_HOT_PATH
void PathPlanT<T>::path_metric_block(std::span<const linalg::cplx> ybar,
                                     std::size_t first_path,
                                     std::size_t n_paths, double* out) const {
  assert(compiled() && ybar.size() == nt_);
  assert(first_path + n_paths <= num_paths_);
  double tmp[kLanes];
  std::size_t written = 0;
  while (written < n_paths) {
    const std::size_t p = first_path + written;
    const std::size_t block = p / kLanes;
    const std::size_t lane0 = p % kLanes;
    eval_block(ybar.data(), block, tmp);
    const std::size_t take = std::min(n_paths - written, kLanes - lane0);
    for (std::size_t k = 0; k < take; ++k) out[written + k] = tmp[lane0 + k];
    written += take;
  }
}

template <typename T>
std::size_t PathPlanT<T>::footprint_bytes() const noexcept {
  const auto split = [](const linalg::SplitVec<T>& v) {
    return (v.re.size() + v.im.size()) * sizeof(T);
  };
  return split(r_) + split(rdi_) + split(rx_) + split(pt_) +
         ranks_.size() * sizeof(std::int32_t) + all_rank_one_.size() +
         lut_di_.size() + lut_dq_.size() + powq_.size() * sizeof(std::size_t);
}

template class PathPlanT<double>;
template class PathPlanT<float>;

// ---------------------------------------------------------------------------
// PathPlanI16 — the quantized tier.
//
// Number format (all scales are powers of two, chosen per plan at compile):
//   * P (point_bits):  constellation points stored as round(pt * 2^P),
//     the largest P with (side-1)*scale * 2^P <= I16Format::kMax.
//   * F (frac_bits):   R rows, rx tables and the cancellation value b are
//     at scale 2^F.  F = min(fit, overflow, I16Format::kFracBits) where
//     `fit` keeps every stored channel component inside int16 and
//     `overflow` guarantees (2*Nt + 4) * vmax*2^F * pmax*2^P < 2^31 — the
//     worst-case |b| accumulation (ybar is saturated to 4 product
//     magnitudes, each of the <= Nt-1 cancellation terms contributes at
//     most 2) — so the int32 j-loop can NEVER wrap, by construction, not
//     by runtime checks.
//   * G_i (rdi_bits):  per-level scale of the quantized 1/R(i,i); the
//     effective point e = b * (1/R(i,i)) is an int32 at 2^(F + G_i),
//     bounded by 2*kMax^2 < 2^31 because both factors are int16-clamped.
//
// The per-(plan, level) slicer LUT maps eff_raw (at 2^(F+G_i)) straight to
// an unclamped axis index: bucket = (eff_raw >> shift) + 128 clamped to
// [0, 255], where shift is the smallest value covering +-(side + kPamPad) *
// scale in the middle 254 buckets.  Buckets 0 and 255 absorb the whole
// out-of-coverage tail and always hold the kSlicerInvalid sentinel, as do
// all 256 buckets of a level whose 1/R(i,i) is non-finite (rank-deficient
// channel — the fp tiers' NaN clamp deactivates those lanes; the sentinel
// does the same here).
// ---------------------------------------------------------------------------

namespace {

constexpr std::int32_t kI16Max = perfmodel::I16Format::kMax;
constexpr std::int32_t kI16Min = perfmodel::I16Format::kMin;

/// Round-to-nearest int16 store with NaN-safe saturation (NaN folds to the
/// upper clamp, like round_half_away's 1e9 rule).
inline std::int16_t quantize_i16(double v) noexcept {
  const double hi = static_cast<double>(kI16Max);
  const double lo = static_cast<double>(kI16Min);
  const double c = !(v < hi) ? hi : (v < lo ? lo : v);
  return static_cast<std::int16_t>(
      static_cast<std::int32_t>(c >= 0.0 ? c + 0.5 : c - 0.5));
}

/// Round-to-nearest int32 with symmetric saturation at +-cap (cap < 2^31).
/// NaN folds to +cap: an undecodable ybar component saturates instead of
/// invoking UB on the float->int cast.
inline std::int32_t quantize_i32(double raw, double cap) noexcept {
  const double c = !(raw < cap) ? cap : (raw < -cap ? -cap : raw);
  return static_cast<std::int32_t>(c >= 0.0 ? c + 0.5 : c - 0.5);
}

/// (re, im) int16 pair packed into one int32: re in the low 16 bits, im in
/// the high 16 (two's-complement bit patterns, routed through unsigned so
/// no shift ever overflows a signed value).
inline std::int32_t pack_i16_pair(std::int16_t re, std::int16_t im) noexcept {
  const std::uint32_t u =
      static_cast<std::uint32_t>(static_cast<std::uint16_t>(re)) |
      (static_cast<std::uint32_t>(static_cast<std::uint16_t>(im)) << 16);
  return static_cast<std::int32_t>(u);
}

/// The compiled-plan state the dispatched kernel reads: raw pointers only,
/// filled per path_metric_block call (the plan is immutable while grids
/// run, so the pointers stay valid across the whole scan).
struct I16KernelState {
  std::size_t nt = 0, q = 0, full_levels = 0;
  int side = 0, pbits = 0, fbits = 0;
  int pt_half = 0;  // lround(scale * 2^P): PAM half-step at the point scale
  int mode = 0;  // PathPlanI16::Mode, as int: 0 lut / 1 generic / 2 exact / 3 fcsd
  double metric_unscale = 0.0;
  const std::int16_t* r_re = nullptr;
  const std::int16_t* r_im = nullptr;
  const std::int32_t* rx_pack = nullptr;
  const std::int32_t* pt_pack = nullptr;
  const std::int16_t* rdi_re = nullptr;
  const std::int16_t* rdi_im = nullptr;
  const std::int32_t* rh_re = nullptr;  // R(i,i)*scale at 2^F (affine rx)
  const std::int32_t* rh_im = nullptr;
  const int* gbits = nullptr;
  const int* slicer_shift = nullptr;
  const std::int32_t* slice_ar = nullptr;
  const std::int32_t* slice_ai = nullptr;
  const std::int32_t* slice_off = nullptr;
  const std::int32_t* slice_s = nullptr;
  const std::uint8_t* slice_live = nullptr;
  const std::int8_t* slicer = nullptr;
  const std::int32_t* pam = nullptr;
  int pam_span = 0;
  const std::int16_t* ranks = nullptr;
  const std::uint32_t* fix_mask = nullptr;
  const std::int8_t* lut_di = nullptr;
  const std::int8_t* lut_dq = nullptr;
  const std::size_t* powq = nullptr;
  const core::OrderingLut* lut = nullptr;
  const modulation::Constellation* cst = nullptr;
  core::InvalidEntryPolicy policy = core::InvalidEntryPolicy::kDeactivate;
};

// Runtime-dispatched kernel: the library ships portable (baseline-ISA)
// binaries, but an integer kernel lives or dies by pmulld/AVX2 — so on
// x86-64 the kernel body is compiled once per ISA tier (baseline, SSE4.1,
// AVX2, AVX-512F) and one startup __builtin_cpu_supports decision selects
// the widest supported copy through a plain function pointer.  (Explicit
// dispatch rather than attribute((target_clones)): the ifunc machinery was
// observed picking a narrow clone on some loaders, and a function pointer
// is inspectable.)  Every copy computes bit-identical results — the
// datapath is pure integer — so dispatch cannot change detection output.
// Sanitized builds compile only the baseline copy: same code, fully
// instrumented (the UBSan job covers the saturating int arithmetic).
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define FLEXCORE_I16_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define FLEXCORE_I16_SANITIZED 1
#endif
#ifndef FLEXCORE_I16_SANITIZED
#define FLEXCORE_I16_SANITIZED 0
#endif

#if (defined(__GNUC__) || defined(__clang__)) && defined(__x86_64__) && \
    !FLEXCORE_I16_SANITIZED
#define FLEXCORE_I16_MULTIVERSION 1
#else
#define FLEXCORE_I16_MULTIVERSION 0
#endif

#if defined(__GNUC__) || defined(__clang__)
// The body must inline into each per-ISA wrapper so it is lowered with that
// wrapper's vector width (an out-of-line copy would be baseline-lowered and
// defeat the dispatch).
#define FLEXCORE_I16_FORCE_INLINE inline __attribute__((always_inline))
#else
#define FLEXCORE_I16_FORCE_INLINE inline
#endif

#if FLEXCORE_I16_MULTIVERSION
#pragma GCC push_options
#pragma GCC target("sse4.1")
#define FLEXCORE_I16_NS i16_sse41
#include "detect/path_kernels_i16_kernel.inc"
#undef FLEXCORE_I16_NS
#pragma GCC pop_options

#pragma GCC push_options
#pragma GCC target("avx2")
#define FLEXCORE_I16_NS i16_avx2
#include "detect/path_kernels_i16_kernel.inc"
#undef FLEXCORE_I16_NS
#pragma GCC pop_options

#pragma GCC push_options
#pragma GCC target("avx512f")
#define FLEXCORE_I16_NS i16_avx512
#include "detect/path_kernels_i16_kernel.inc"
#undef FLEXCORE_I16_NS
#pragma GCC pop_options
#endif  // FLEXCORE_I16_MULTIVERSION

// The baseline-ISA copy always exists: it is the only copy on non-x86 /
// non-GNU / sanitized builds, the fallback on ancient x86-64, and the
// reference the cross-ISA equivalence test pins via FLEXCORE_I16_ISA.
#define FLEXCORE_I16_NS i16_base
#include "detect/path_kernels_i16_kernel.inc"
#undef FLEXCORE_I16_NS

using I16EvalFn = void (*)(const I16KernelState&, const std::int32_t*,
                           const std::int32_t*, std::size_t, double*);

/// The selected kernel copy (solo 16-lane block / fused adjacent pair).
struct I16Kernels {
  I16EvalFn one;
  I16EvalFn pair;
};

/// Runs once (static init): widest ISA the CPU supports wins.  The
/// FLEXCORE_I16_ISA environment knob ("base", "sse41", "avx2", "avx512")
/// pins a specific copy — every copy computes bit-identical results, so
/// the knob exists for benchmarking and for the cross-ISA equivalence
/// tests, not correctness.
I16Kernels pick_i16_kernels() {
#if FLEXCORE_I16_MULTIVERSION
  __builtin_cpu_init();
  if (const char* pin = std::getenv("FLEXCORE_I16_ISA")) {
    if (std::strcmp(pin, "base") == 0) {
      return {i16_base::eval_one, i16_base::eval_pair};
    }
    if (std::strcmp(pin, "sse41") == 0 && __builtin_cpu_supports("sse4.1")) {
      return {i16_sse41::eval_one, i16_sse41::eval_pair};
    }
    if (std::strcmp(pin, "avx2") == 0 && __builtin_cpu_supports("avx2")) {
      return {i16_avx2::eval_one, i16_avx2::eval_pair};
    }
    if (std::strcmp(pin, "avx512") == 0 &&
        __builtin_cpu_supports("avx512f")) {
      return {i16_avx512::eval_one, i16_avx512::eval_pair};
    }
  }
  if (__builtin_cpu_supports("avx512f")) {
    return {i16_avx512::eval_one, i16_avx512::eval_pair};
  }
  if (__builtin_cpu_supports("avx2")) {
    return {i16_avx2::eval_one, i16_avx2::eval_pair};
  }
  if (__builtin_cpu_supports("sse4.1")) {
    return {i16_sse41::eval_one, i16_sse41::eval_pair};
  }
#endif
  return {i16_base::eval_one, i16_base::eval_pair};
}

const I16Kernels g_i16_kernels = pick_i16_kernels();

}  // namespace

void PathPlanI16::compile_channel(const linalg::CMat& r,
                                  const modulation::Constellation& c,
                                  bool /*with_diag_inverse*/) {
  // (The fp tiers skip 1/R(i,i) for FCSD; the quantized tier always
  // compiles it — the greedy FCSD slice runs through the same LUT slicer.)
  const std::size_t nt = r.cols();
  if (nt == 0 || nt > kMaxLevels) {
    throw std::invalid_argument("PathPlanI16: need 1 <= Nt <= 32");
  }
  nt_ = nt;
  q_ = c.order();
  side_ = c.side();
  scale_ = c.scale();
  inv_scale_ = c.inv_scale();
  c_ = &c;
  const std::size_t q = static_cast<std::size_t>(q_);

  using QF = perfmodel::I16Format;

  // Largest point scale 2^P that keeps every point component in int16 —
  // an upper bound only: the int32 overflow budget below decides how much
  // of it P actually gets.
  double pmax = 0.0;
  for (const linalg::cplx& p : c.points()) {
    pmax = std::max({pmax, std::fabs(p.real()), std::fabs(p.imag())});
  }
  const int p_fit = std::clamp(
      static_cast<int>(
          std::floor(std::log2(static_cast<double>(QF::kMax) / pmax))),
      1, 30);

  // Channel magnitude over everything stored at 2^F.
  double vmax = 0.0;
  for (std::size_t i = 0; i < nt; ++i) {
    for (std::size_t j = i; j < nt; ++j) {
      vmax = std::max(
          {vmax, std::fabs(r(i, j).real()), std::fabs(r(i, j).imag())});
    }
    for (std::size_t x = 0; x < q; ++x) {
      const linalg::cplx rx = r(i, i) * c.point(static_cast<int>(x));
      vmax = std::max({vmax, std::fabs(rx.real()), std::fabs(rx.imag())});
    }
  }
  if (!(vmax > 0.0) || !std::isfinite(vmax)) vmax = 1.0;

  // F gets first claim on the int32 headroom, P takes what is left.  Every
  // slicing decision and metric residual lives at the channel scale 2^F, so
  // one bit of F halves the decision-flip rate near cell boundaries; the
  // points only need enough bits to separate `side` levels, so P is the
  // right place to give bits back.  The budget bounds the accumulator walk
  // |ybar| + sum of cancellation products by (2 Nt + 4) * vmax * pmax *
  // 2^(F+P) <= 2^31.
  const int f_fit = static_cast<int>(
      std::floor(std::log2(static_cast<double>(QF::kMax) / vmax)));
  fbits_ = std::min(f_fit, QF::kFracBits);
  const double pbudget =
      std::ldexp(1.0, 31) /
      ((2.0 * static_cast<double>(nt) + 4.0) * vmax * pmax *
       std::ldexp(1.0, fbits_));
  pbits_ = std::clamp(
      std::min(p_fit, static_cast<int>(std::floor(std::log2(pbudget)))), 1,
      30);
  // If P hit its floor (or its int16 fit) first, pull F back under the
  // budget; otherwise this recheck is a no-op by construction.
  const double fbudget =
      std::ldexp(1.0, 31) /
      ((2.0 * static_cast<double>(nt) + 4.0) * vmax * pmax *
       std::ldexp(1.0, pbits_));
  fbits_ = std::min(fbits_, static_cast<int>(std::floor(std::log2(fbudget))));
  metric_unscale_ = std::ldexp(1.0, -2 * fbits_);
  ybar_cap_raw_ = 4.0 * vmax * pmax * std::ldexp(1.0, fbits_ + pbits_);

  // Quantized channel state.
  const double fs = std::ldexp(1.0, fbits_);
  const double ps = std::ldexp(1.0, pbits_);
  r_q_.resize(nt * nt);
  for (std::size_t i = 0; i < nt; ++i) {
    for (std::size_t j = 0; j < nt; ++j) {
      r_q_.re[i * nt + j] = quantize_i16(r(i, j).real() * fs);
      r_q_.im[i * nt + j] = quantize_i16(r(i, j).imag() * fs);
    }
  }
  // rx rows are affine in the axis indices: rx[i][x] = R(i,i) * point(x)
  // with point = ((2 a_re - (side-1)) + j (2 a_im - (side-1))) * scale, so
  // one quantized complex step rh = R(i,i) * scale * 2^F per level
  // reproduces the whole row.  The kernel's hot mode computes the metric
  // reference straight from the sliced axis indices with this identity (no
  // per-lane row gather), and the table modes read the same values here, so
  // every mode sees identical quantized rx.  The doubled-axis offsets obey
  // (side-1) * (|rh_re| + |rh_im|) <= kMax + 2(side-1): the exact corner
  // value is part of vmax, which bounds it by kMax at 2^F, and each step
  // rounds by at most 1/2 — so rows fit int16 after a defensive clamp and
  // every kernel intermediate fits int32 untouched.
  rh_re_q_.assign(nt, 0);
  rh_im_q_.assign(nt, 0);
  rx_pack_.resize(nt * q);
  for (std::size_t i = 0; i < nt; ++i) {
    const linalg::cplx rii = r(i, i);
    rh_re_q_[i] = static_cast<std::int32_t>(std::clamp(
        std::lround(rii.real() * scale_ * fs), -long{QF::kMax}, long{QF::kMax}));
    rh_im_q_[i] = static_cast<std::int32_t>(std::clamp(
        std::lround(rii.imag() * scale_ * fs), -long{QF::kMax}, long{QF::kMax}));
    for (std::size_t x = 0; x < q; ++x) {
      const int er = 2 * (static_cast<int>(x) / side_) - (side_ - 1);
      const int eq = 2 * (static_cast<int>(x) % side_) - (side_ - 1);
      rx_pack_[i * q + x] = pack_i16_pair(
          static_cast<std::int16_t>(std::clamp<std::int32_t>(
              er * rh_re_q_[i] - eq * rh_im_q_[i], -QF::kMax, QF::kMax)),
          static_cast<std::int16_t>(std::clamp<std::int32_t>(
              er * rh_im_q_[i] + eq * rh_re_q_[i], -QF::kMax, QF::kMax)));
    }
  }
  // Quantized points are defined AFFINELY in the axis indices — the grid is
  // pam(a) = (2a - (side-1)) * scale, so one quantized half-step reproduces
  // every point: pt_q[a_re, a_im] = ((2 a_re - (side-1)) h, (2 a_im -
  // (side-1)) h).  The kernel's hot mode computes recurrence symbols
  // straight from sliced axis indices with this identity (no table gather
  // on the decision-feedback chain), and the table modes read the same
  // values here, so all modes agree bit-for-bit.  h is capped so the edge
  // level (side-1) * h stays in int16 — same bound the per-point
  // quantization obeyed.
  pt_half_q_ = static_cast<std::int32_t>(std::lround(scale_ * ps));
  pt_half_q_ = std::min<std::int32_t>(
      pt_half_q_, static_cast<std::int32_t>(QF::kMax) / (side_ - 1));
  pt_half_q_ = std::max<std::int32_t>(pt_half_q_, 1);
  pt_pack_.resize(q);
  for (std::size_t x = 0; x < q; ++x) {
    const int ai = static_cast<int>(x) / side_;
    const int aq = static_cast<int>(x) % side_;
    pt_pack_[x] = pack_i16_pair(
        static_cast<std::int16_t>((2 * ai - (side_ - 1)) * pt_half_q_),
        static_cast<std::int16_t>((2 * aq - (side_ - 1)) * pt_half_q_));
  }

  // Quantized diagonal inverses + per-level slicer / PAM tables.
  rdi_re_q_.assign(nt, 0);
  rdi_im_q_.assign(nt, 0);
  gbits_.assign(nt, 0);
  slicer_shift_.assign(nt, 0);
  slicer_.assign(nt * kSlicerBuckets, kSlicerInvalid);
  slice_ar_.assign(nt, 0);
  slice_ai_.assign(nt, 0);
  slice_off_.assign(nt, 0);
  slice_s_.assign(nt, 1);
  slice_live_.assign(nt, 0);
  pam_span_ = side_ + 2 * kPamPad + 1;
  pam_q_.assign(nt * static_cast<std::size_t>(pam_span_), 0);
  constexpr double kPamCap = 1073741824.0;  // 2^30: unreachable by eff_raw

  for (std::size_t i = 0; i < nt; ++i) {
    // flexcore-lint: allow-next-line(HP005) LUT compile time, not per-path
    const linalg::cplx inv = linalg::cplx{1.0, 0.0} / r(i, i);
    const double m = std::max(std::fabs(inv.real()), std::fabs(inv.imag()));
    const bool invertible = std::isfinite(m) && m > 0.0;
    if (invertible) {
      int g = static_cast<int>(
          std::floor(std::log2(static_cast<double>(QF::kMax) / m)));
      g = std::clamp(g, -30, 30);
      gbits_[i] = g;
      const double gs = std::ldexp(1.0, g);
      rdi_re_q_[i] = quantize_i16(inv.real() * gs);
      rdi_im_q_[i] = quantize_i16(inv.imag() * gs);
    }

    // PAM residual table at eff's scale 2^(F+G_i); saturated entries are
    // unreachable (|eff_raw| <= 2*kMax^2 but table values would be wider).
    const double es = std::ldexp(1.0, fbits_ + gbits_[i]);
    for (int a = -kPamPad; a <= side_ + kPamPad; ++a) {
      const double val = (2.0 * a - (side_ - 1)) * scale_ * es;
      const double cl = !(val < kPamCap) ? kPamCap
                        : (val < -kPamCap ? -kPamCap : val);
      pam_q_[i * static_cast<std::size_t>(pam_span_) +
             static_cast<std::size_t>(a + kPamPad)] =
          static_cast<std::int32_t>(cl >= 0.0 ? cl + 0.5 : cl - 0.5);
    }

    if (!invertible) continue;  // slicer stays all-sentinel: lanes die here

    // Compile the slicer LUT: the middle 254 buckets must cover
    // +-(side + kPamPad) * scale of effective point; buckets 0/255 are the
    // saturating catch-alls and always sentinel.
    const double cover_raw = (side_ + kPamPad) * scale_ * es;
    int sh = 0;
    const double need = cover_raw / 126.0;
    if (need > 1.0) sh = static_cast<int>(std::ceil(std::log2(need)));
    sh = std::clamp(sh, 0, 31);
    slicer_shift_[i] = sh;

    // Affine (vector) form of the same slicer, with the complex rotation
    // by 1/R(i,i) folded in so the kernel slices straight from the
    // int16-clamped b (see the header's member comment).  Per unit of
    // b16_{re,im}, the axis moves by
    //   W = (1/R(i,i)) * inv_scale / 2 / 2^F,
    // quantized as (ar, ai) = round(W * 2^s) with s picked so the larger
    // component sits in (2^12, 2^13] — relative error <= 2^-13, i.e. well
    // under half an axis step for every in-coverage lane.  A channel so
    // ill-scaled that s would fall below 1 (|W| > 2^13, meaning one b16
    // quantum jumps thousands of axis steps) is treated like the
    // rank-deficient case: the level stays slice_live_ = 0.
    {
      const double wr = inv.real() * inv_scale_ / 2.0 / fs;
      const double wi = inv.imag() * inv_scale_ / 2.0 / fs;
      const double wmax = std::max(std::fabs(wr), std::fabs(wi));
      if (wmax > 0.0 && wmax <= 8192.0) {
        int s = static_cast<int>(std::floor(std::log2(8192.0 / wmax)));
        s = std::clamp(s, 1, 27);
        const double ss = std::ldexp(1.0, s);
        slice_s_[i] = s;
        slice_ar_[i] = static_cast<std::int32_t>(std::lround(wr * ss));
        slice_ai_[i] = static_cast<std::int32_t>(std::lround(wi * ss));
        slice_off_[i] = static_cast<std::int32_t>(side_) << (s - 1);
        slice_live_[i] = 1;
      }
    }
    const double bucket = std::ldexp(1.0, sh);
    for (std::size_t t = 1; t + 1 < kSlicerBuckets; ++t) {
      // The same rounded-center rule as the fp slicer, evaluated once per
      // bucket midpoint at compile time.
      const double e_mid =
          ((static_cast<double>(t) - 128.0) + 0.5) * bucket / es;
      const int a =
          round_half_away((e_mid * inv_scale_ + (side_ - 1)) / 2.0);
      if (a > -kPamPad && a < side_ + kPamPad) {
        slicer_[i * kSlicerBuckets + t] = static_cast<std::int8_t>(a);
      }
    }
  }
}

void PathPlanI16::compile_flexcore(const linalg::CMat& r,
                                   std::span<const core::RankedPath> paths,
                                   const modulation::Constellation& c,
                                   const core::OrderingLut& lut,
                                   bool exact_ordering,
                                   core::InvalidEntryPolicy policy) {
  compile_channel(r, c, /*with_diag_inverse=*/true);
  num_paths_ = paths.size();
  lut_ = &lut;
  policy_ = policy;
  full_levels_ = 0;
  powq_.clear();
  mode_ = exact_ordering ? Mode::kExactRank
          : policy == core::InvalidEntryPolicy::kDeactivate
              ? Mode::kLutRank
              : Mode::kGenericRank;

  // Selector table, path-major-blocked at the doubled lane width; ranks
  // are <= |Q| <= 256 so int16 entries halve the table too.
  const std::size_t nb = linalg::simd_blocks_of(num_paths_, kLanes);
  ranks_.assign(nb * nt_ * kLanes, 1);
  for (std::size_t p = 0; p < num_paths_; ++p) {
    const core::PositionVector& pv = paths[p].p;
    assert(pv.size() == nt_);
    const std::size_t b = p / kLanes;
    const std::size_t l = p % kLanes;
    for (std::size_t i = 0; i < nt_; ++i) {
      ranks_[(b * nt_ + i) * kLanes + l] = static_cast<std::int16_t>(pv[i]);
    }
  }

  // Per-lane fix masks: a rank-1 lane's decision is the slicer center
  // itself only when the LUT's first entry really is the center, which
  // compile verifies rather than assumes; every other lane is flagged for
  // the scalar table path.
  fix_mask_.assign(nb * nt_, 0);
  const auto& base0 = lut.base_order().front();
  const bool center_first =
      mode_ == Mode::kLutRank && base0.di == 0 && base0.dq == 0;
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::size_t i = 0; i < nt_; ++i) {
      const std::int16_t* lane = ranks_.data() + (b * nt_ + i) * kLanes;
      std::uint32_t m = 0;
      for (std::size_t l = 0; l < kLanes; ++l) {
        if (!center_first || lane[l] != 1) m |= std::uint32_t{1} << l;
      }
      fix_mask_[b * nt_ + i] = m;
    }
  }
  if (mode_ == Mode::kLutRank) {
    const auto& base = lut.base_order();
    const std::size_t q = base.size();
    lut_di_.resize(8 * q);
    lut_dq_.resize(8 * q);
    for (int t = 0; t < 8; ++t) {
      const bool swap_axes = (t & 4) != 0;
      const bool flip_u = (t & 2) != 0;
      const bool flip_v = (t & 1) != 0;
      for (std::size_t k = 0; k < q; ++k) {
        int di = base[k].di;
        int dq = base[k].dq;
        if (swap_axes) std::swap(di, dq);
        if (flip_u) di = -di;
        if (flip_v) dq = -dq;
        lut_di_[static_cast<std::size_t>(t) * q + k] =
            static_cast<std::int8_t>(di);
        lut_dq_[static_cast<std::size_t>(t) * q + k] =
            static_cast<std::int8_t>(dq);
      }
    }
  }
}

void PathPlanI16::compile_fcsd(const linalg::CMat& r, std::size_t full_levels,
                               const modulation::Constellation& c) {
  if (full_levels > r.cols()) {
    throw std::invalid_argument("PathPlanI16: fcsd full_levels > Nt");
  }
  compile_channel(r, c, /*with_diag_inverse=*/true);
  mode_ = Mode::kFcsd;
  full_levels_ = full_levels;
  lut_ = nullptr;
  ranks_.clear();
  fix_mask_.clear();
  powq_.resize(full_levels);
  num_paths_ = 1;
  for (std::size_t d = 0; d < full_levels; ++d) {
    powq_[d] = num_paths_;
    num_paths_ *= static_cast<std::size_t>(q_);
  }
}

int PathPlanI16::slicer_center(std::size_t level, double eff) const {
  assert(compiled() && level < nt_);
  // Quantize eff exactly like the kernel sees it mid-walk, then run the
  // same shift + bias + clamp + table read.
  const double es = std::ldexp(1.0, fbits_ + gbits_[level]);
  const std::int32_t er = quantize_i32(eff * es, 2147221504.0 /* ~2^31 */);
  const int t = std::clamp((er >> slicer_shift_[level]) + 128, 0, 255);
  return slicer_[level * kSlicerBuckets + static_cast<std::size_t>(t)];
}

std::size_t PathPlanI16::footprint_bytes() const noexcept {
  const auto split = [](const linalg::SplitVec<std::int16_t>& v) {
    return (v.re.size() + v.im.size()) * sizeof(std::int16_t);
  };
  return split(r_q_) +
         (rx_pack_.size() + pt_pack_.size()) * sizeof(std::int32_t) +
         (rdi_re_q_.size() + rdi_im_q_.size()) * sizeof(std::int16_t) +
         (rh_re_q_.size() + rh_im_q_.size()) * sizeof(std::int32_t) +
         gbits_.size() * sizeof(int) + slicer_shift_.size() * sizeof(int) +
         (slice_ar_.size() + slice_ai_.size() + slice_off_.size() +
          slice_s_.size()) *
             sizeof(std::int32_t) +
         slice_live_.size() + slicer_.size() +
         pam_q_.size() * sizeof(std::int32_t) +
         ranks_.size() * sizeof(std::int16_t) +
         fix_mask_.size() * sizeof(std::uint32_t) + lut_di_.size() +
         lut_dq_.size() + powq_.size() * sizeof(std::size_t);
}

FLEXCORE_HOT_PATH
void PathPlanI16::path_metric_block(std::span<const linalg::cplx> ybar,
                                    std::size_t first_path,
                                    std::size_t n_paths, double* out) const {
  assert(compiled() && ybar.size() == nt_);
  assert(first_path + n_paths <= num_paths_);
  // Quantize ybar once per call onto the accumulator scale 2^(F+P),
  // saturating at the compile-time cap the overflow budget reserved for it.
  std::int32_t yr[kMaxLevels], yi[kMaxLevels];
  const double ys = std::ldexp(1.0, fbits_ + pbits_);
  for (std::size_t i = 0; i < nt_; ++i) {
    yr[i] = quantize_i32(ybar[i].real() * ys, ybar_cap_raw_);
    yi[i] = quantize_i32(ybar[i].imag() * ys, ybar_cap_raw_);
  }

  I16KernelState st;
  st.nt = nt_;
  st.q = static_cast<std::size_t>(q_);
  st.full_levels = full_levels_;
  st.side = side_;
  st.pbits = pbits_;
  st.fbits = fbits_;
  st.pt_half = pt_half_q_;
  st.mode = static_cast<int>(mode_);
  st.metric_unscale = metric_unscale_;
  st.r_re = r_q_.re.data();
  st.r_im = r_q_.im.data();
  st.rx_pack = rx_pack_.data();
  st.pt_pack = pt_pack_.data();
  st.rdi_re = rdi_re_q_.data();
  st.rdi_im = rdi_im_q_.data();
  st.rh_re = rh_re_q_.data();
  st.rh_im = rh_im_q_.data();
  st.gbits = gbits_.data();
  st.slicer_shift = slicer_shift_.data();
  st.slice_ar = slice_ar_.data();
  st.slice_ai = slice_ai_.data();
  st.slice_off = slice_off_.data();
  st.slice_s = slice_s_.data();
  st.slice_live = slice_live_.data();
  st.slicer = slicer_.data();
  st.pam = pam_q_.data();
  st.pam_span = pam_span_;
  st.ranks = ranks_.empty() ? nullptr : ranks_.data();
  st.fix_mask = fix_mask_.empty() ? nullptr : fix_mask_.data();
  st.lut_di = lut_di_.data();
  st.lut_dq = lut_dq_.data();
  st.powq = powq_.data();
  st.lut = lut_;
  st.cst = c_;
  st.policy = policy_;

  double tmp[2 * kLanes];
  std::size_t written = 0;
  while (written < n_paths) {
    const std::size_t p = first_path + written;
    const std::size_t block = p / kLanes;
    const std::size_t lane0 = p % kLanes;
    // Block-aligned runs of >= 2 blocks go through the fused-pair kernel —
    // the grid scanner feeds 32-path chunks precisely to hit this path.
    if (lane0 == 0 && n_paths - written >= 2 * kLanes) {
      g_i16_kernels.pair(st, yr, yi, block, tmp);
      for (std::size_t k = 0; k < 2 * kLanes; ++k) out[written + k] = tmp[k];
      written += 2 * kLanes;
      continue;
    }
    g_i16_kernels.one(st, yr, yi, block, tmp);
    const std::size_t take = std::min(n_paths - written, kLanes - lane0);
    for (std::size_t k = 0; k < take; ++k) out[written + k] = tmp[lane0 + k];
    written += take;
  }
}

}  // namespace flexcore::detect
