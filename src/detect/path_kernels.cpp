#include "detect/path_kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <complex>
#include <limits>
#include <stdexcept>

namespace flexcore::detect {

template <typename T>
void PathPlanT<T>::compile_channel(const linalg::CMat& r,
                                   const modulation::Constellation& c,
                                   bool with_diag_inverse) {
  const std::size_t nt = r.cols();
  if (nt == 0 || nt > kMaxLevels) {
    throw std::invalid_argument("PathPlan: need 1 <= Nt <= 32");
  }
  nt_ = nt;
  q_ = c.order();
  side_ = c.side();
  scale_ = c.scale();
  inv_scale_ = c.inv_scale();
  c_ = &c;

  r_.resize(nt * nt);
  for (std::size_t i = 0; i < nt; ++i) {
    for (std::size_t j = 0; j < nt; ++j) r_.set(i * nt + j, r(i, j));
  }

  // rx[i][x] = R(i,i) * point(x), the same double product the scalar
  // detectors tabulate — computed here so the plan is self-contained, and
  // bit-identical because it is the identical operation on identical
  // values (guarded by tests/kernel_test.cpp).
  const std::size_t q = static_cast<std::size_t>(q_);
  rx_.resize(nt * q);
  for (std::size_t i = 0; i < nt; ++i) {
    const linalg::cplx rii = r(i, i);
    for (std::size_t x = 0; x < q; ++x) {
      rx_.set(i * q + x, rii * c.point(static_cast<int>(x)));
    }
  }

  pt_.assign(c.points());

  if (with_diag_inverse) {
    rdi_.resize(nt);
    for (std::size_t i = 0; i < nt; ++i) {
      rdi_.set(i, linalg::cplx{1.0, 0.0} / r(i, i));
    }
  } else {
    rdi_.clear();
  }
}

template <typename T>
void PathPlanT<T>::compile_flexcore(const linalg::CMat& r,
                                    std::span<const core::RankedPath> paths,
                                    const modulation::Constellation& c,
                                    const core::OrderingLut& lut,
                                    bool exact_ordering,
                                    core::InvalidEntryPolicy policy) {
  compile_channel(r, c, /*with_diag_inverse=*/true);
  num_paths_ = paths.size();
  lut_ = &lut;
  policy_ = policy;
  full_levels_ = 0;
  powq_.clear();
  mode_ = exact_ordering ? Mode::kExactRank
          : policy == core::InvalidEntryPolicy::kDeactivate
              ? Mode::kLutRank
              : Mode::kGenericRank;

  // Selector table, path-major-blocked.  Tail lanes of the last block get
  // rank 1; their metrics are computed and discarded, never emitted.
  const std::size_t nb = linalg::simd_blocks(num_paths_);
  ranks_.assign(nb * nt_ * kLanes, 1);
  for (std::size_t p = 0; p < num_paths_; ++p) {
    const core::PositionVector& pv = paths[p].p;
    assert(pv.size() == nt_);
    const std::size_t b = p / kLanes;
    const std::size_t l = p % kLanes;
    for (std::size_t i = 0; i < nt_; ++i) {
      ranks_[(b * nt_ + i) * kLanes + l] = pv[i];
    }
  }

  // Rank-1 uniformity flags: a most-promising path set is rank 1 at almost
  // every (path, level), and the LUT's first entry is the slicer center
  // itself (offset (0,0), invariant under all 8 transforms).  Where a whole
  // block agrees, the kernel skips the residual/triangle math and the table
  // gather entirely — only when the base order really starts at the center,
  // which compile verifies rather than assumes.
  all_rank_one_.assign(nb * nt_, 0);
  const auto& base0 = lut.base_order().front();
  if (mode_ == Mode::kLutRank && base0.di == 0 && base0.dq == 0) {
    for (std::size_t b = 0; b < nb; ++b) {
      for (std::size_t i = 0; i < nt_; ++i) {
        const std::int32_t* lane = ranks_.data() + (b * nt_ + i) * kLanes;
        bool all_one = true;
        for (std::size_t l = 0; l < kLanes; ++l) all_one &= lane[l] == 1;
        all_rank_one_[b * nt_ + i] = all_one;
      }
    }
  }

  // Expand the canonical triangle order under all 8 dihedral transforms so
  // the per-lane lookup needs no reflection logic — the same swap-then-flip
  // sequence OrderingLut::kth_symbol applies per entry.
  if (mode_ == Mode::kLutRank) {
    const auto& base = lut.base_order();
    const std::size_t q = base.size();
    lut_di_.resize(8 * q);
    lut_dq_.resize(8 * q);
    for (int t = 0; t < 8; ++t) {
      const bool swap_axes = (t & 4) != 0;
      const bool flip_u = (t & 2) != 0;
      const bool flip_v = (t & 1) != 0;
      for (std::size_t k = 0; k < q; ++k) {
        int di = base[k].di;
        int dq = base[k].dq;
        if (swap_axes) std::swap(di, dq);
        if (flip_u) di = -di;
        if (flip_v) dq = -dq;
        lut_di_[static_cast<std::size_t>(t) * q + k] =
            static_cast<std::int8_t>(di);
        lut_dq_[static_cast<std::size_t>(t) * q + k] =
            static_cast<std::int8_t>(dq);
      }
    }
  }
}

template <typename T>
void PathPlanT<T>::compile_fcsd(const linalg::CMat& r, std::size_t full_levels,
                                const modulation::Constellation& c) {
  if (full_levels > r.cols()) {
    throw std::invalid_argument("PathPlan: fcsd full_levels > Nt");
  }
  compile_channel(r, c, /*with_diag_inverse=*/false);
  mode_ = Mode::kFcsd;
  full_levels_ = full_levels;
  lut_ = nullptr;
  ranks_.clear();
  powq_.resize(full_levels);
  num_paths_ = 1;
  for (std::size_t d = 0; d < full_levels; ++d) {
    powq_[d] = num_paths_;
    num_paths_ *= static_cast<std::size_t>(q_);
  }
}

namespace {

/// Round to nearest, ties away from zero — std::lround's rule — as
/// branch-light, auto-vectorizable arithmetic (no libm call).  Matches
/// lround bit-for-bit on every value the detectors can produce: the 1e9
/// clamp only engages for effective points astronomically far outside any
/// constellation, where both implementations land on an out-of-range axis
/// index and the entry deactivates either way.
inline int round_half_away(double a) noexcept {
  // !(a < 1e9) also catches NaN (a rank-deficient channel propagates NaN
  // through 1/R(i,i)): it folds to the upper clamp — defined behavior,
  // lands outside any constellation, and the entry deactivates, where
  // casting NaN to int would be UB.
  const double c = !(a < 1e9) ? 1e9 : (a < -1e9 ? -1e9 : a);
  const int t = static_cast<int>(c);  // trunc toward zero
  const double f = c - static_cast<double>(t);
  return t + (f >= 0.5 ? 1 : 0) - (f <= -0.5 ? 1 : 0);
}

// The lane-block register type of the kernel.  GCC/Clang vector extensions
// pin the codegen: element-wise IEEE ops on kLanes-wide values, lowered to
// whatever SIMD width the target has — no auto-vectorizer guesswork (the
// loop vectorizer likes to fuse the j-recurrence across iterations, which
// costs a storm of cross-lane shuffles).  Element-wise semantics are
// identical to the scalar formulas, so bit-identity is untouched.  The
// fallback struct keeps other compilers correct, just slower.
#if defined(__GNUC__) || defined(__clang__)
template <typename T, std::size_t N>
struct LaneVecOf {
  typedef T type __attribute__((vector_size(sizeof(T) * N)));
};
#else
template <typename T, std::size_t N>
struct LaneVecFallback {
  T v[N];
  T operator[](std::size_t i) const { return v[i]; }
  T& operator[](std::size_t i) { return v[i]; }
  friend LaneVecFallback operator*(const LaneVecFallback& a,
                                   const LaneVecFallback& b) {
    LaneVecFallback r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  friend LaneVecFallback operator+(const LaneVecFallback& a,
                                   const LaneVecFallback& b) {
    LaneVecFallback r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  friend LaneVecFallback operator-(const LaneVecFallback& a,
                                   const LaneVecFallback& b) {
    LaneVecFallback r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
  }
  LaneVecFallback& operator-=(const LaneVecFallback& o) {
    for (std::size_t i = 0; i < N; ++i) v[i] -= o.v[i];
    return *this;
  }
};
template <typename T, std::size_t N>
struct LaneVecOf {
  using type = LaneVecFallback<T, N>;
};
#endif

/// Broadcast a scalar across all lanes.
template <typename V, typename T>
inline V splat(T s) noexcept {
  V v{};
  for (std::size_t i = 0; i < sizeof(V) / sizeof(T); ++i) v[i] = s;
  return v;
}

}  // namespace

template <typename T>
void PathPlanT<T>::eval_block(const linalg::cplx* ybar, std::size_t block,
                              double out[kLanes]) const {
  const std::size_t nt = nt_;
  const std::size_t q = static_cast<std::size_t>(q_);
  const std::size_t path0 = block * kLanes;

  // Lane-parallel walk state: lane = path.  Same per-level recurrence as
  // the scalar path_metric, with the complex arithmetic written split over
  // LaneVec registers (element-wise, branch-free).
  using VecT = typename LaneVecOf<T, kLanes>::type;
  VecT br, bi;
  VecT er{}, ei{};
  VecT acc{};
  VecT sre[kMaxLevels], sim[kMaxLevels];
  std::int32_t xs[kLanes];
  std::uint8_t dead[kLanes] = {};

  const std::int32_t* sel_base =
      mode_ == Mode::kFcsd ? nullptr : ranks_.data() + block * nt * kLanes;

  for (std::size_t ii = 0; ii < nt; ++ii) {
    const std::size_t i = nt - 1 - ii;

    // b = ybar[i] - sum_{j>i} R(i,j) * s[j]  (Eq. 5 numerator), all lanes.
    br = splat<VecT>(static_cast<T>(ybar[i].real()));
    bi = splat<VecT>(static_cast<T>(ybar[i].imag()));
    const T* rrow_re = r_.re.data() + i * nt;
    const T* rrow_im = r_.im.data() + i * nt;
    for (std::size_t j = i + 1; j < nt; ++j) {
      const VecT rr = splat<VecT>(rrow_re[j]);
      const VecT rj = splat<VecT>(rrow_im[j]);
      br -= rr * sre[j] - rj * sim[j];
      bi -= rr * sim[j] + rj * sre[j];
    }

    // Per-lane symbol decision (the data-dependent gather step).
    if (mode_ == Mode::kFcsd) {
      if (ii < full_levels_) {
        // Enumerated level: base-|Q| digit ii of the path index.
        const std::size_t pw = powq_[ii];
        for (std::size_t l = 0; l < kLanes; ++l) {
          xs[l] = static_cast<std::int32_t>(((path0 + l) / pw) % q);
        }
      } else {
        // Greedy extension: nearest point to b / R(i,i) — the complex
        // division stays std::complex (the scalar kernel's exact library
        // semantics), the slice is the same round-and-clamp inlined.
        const std::complex<T> rd{rrow_re[i], rrow_im[i]};
        for (std::size_t l = 0; l < kLanes; ++l) {
          const std::complex<T> bq = std::complex<T>{br[l], bi[l]} / rd;
          const double qr = static_cast<double>(bq.real());
          const double qi = static_cast<double>(bq.imag());
          const int ir = std::clamp(
              round_half_away((qr * inv_scale_ + (side_ - 1)) / 2.0), 0,
              side_ - 1);
          const int iq = std::clamp(
              round_half_away((qi * inv_scale_ + (side_ - 1)) / 2.0), 0,
              side_ - 1);
          xs[l] = ir * side_ + iq;
        }
      }
    } else {
      // eff = b * (1/R(i,i)): the naive complex product, as std::complex
      // multiplication evaluates for finite values.
      const VecT rdr = splat<VecT>(rdi_.re[i]);
      const VecT rdj = splat<VecT>(rdi_.im[i]);
      er = br * rdr - bi * rdj;
      ei = br * rdj + bi * rdr;
      const std::int32_t* sel = sel_base + i * kLanes;
      if (mode_ == Mode::kLutRank) {
        // Branch-light split lookup, phased: (A) the slicer prescaling per
        // lane (the glue stays double and uses the constellation's shared
        // inv_scale(), so the fp64 tier reproduces OrderingLut::kth_symbol
        // exactly), then either the rank-1 fast path (rounded slicer
        // center + bounds check, no residual/triangle work — most
        // block-levels of a most-promising path set) or the general path
        // (B: center rounding + triangle classification, C: per-lane
        // table gathers and bounds checks).
        double ar[kLanes], aq[kLanes];
        for (std::size_t l = 0; l < kLanes; ++l) {
          ar[l] = (static_cast<double>(er[l]) * inv_scale_ + (side_ - 1)) / 2.0;
          aq[l] = (static_cast<double>(ei[l]) * inv_scale_ + (side_ - 1)) / 2.0;
        }
        if (all_rank_one_[block * nt + i]) {
          for (std::size_t l = 0; l < kLanes; ++l) {
            const std::int32_t cil = round_half_away(ar[l]);
            const std::int32_t cql = round_half_away(aq[l]);
            const bool valid = !dead[l] && cil >= 0 && cil < side_ &&
                               cql >= 0 && cql < side_;
            xs[l] = valid ? cil * side_ + cql : 0;
            dead[l] = valid ? 0 : 1;
          }
        } else {
          std::int32_t ci[kLanes], cq[kLanes], tri[kLanes];
          for (std::size_t l = 0; l < kLanes; ++l) {
            const int cil = round_half_away(ar[l]);
            const int cql = round_half_away(aq[l]);
            const double u = static_cast<double>(er[l]) -
                             (2.0 * cil - (side_ - 1)) * scale_;
            const double v = static_cast<double>(ei[l]) -
                             (2.0 * cql - (side_ - 1)) * scale_;
            const double au = std::fabs(u);
            const double av = std::fabs(v);
            ci[l] = cil;
            cq[l] = cql;
            tri[l] = (av > au ? 4 : 0) | (u < 0.0 ? 2 : 0) | (v < 0.0 ? 1 : 0);
          }
          for (std::size_t l = 0; l < kLanes; ++l) {
            if (dead[l]) {
              xs[l] = 0;  // lane already deactivated; keep the walk defined
              continue;
            }
            const std::int32_t k = sel[l];
            int x = -1;
            if (k >= 1 && k <= q_) {
              const std::size_t e =
                  static_cast<std::size_t>(tri[l]) * q +
                  static_cast<std::size_t>(k - 1);
              const int ai = ci[l] + lut_di_[e];
              const int aq2 = cq[l] + lut_dq_[e];
              if (ai >= 0 && ai < side_ && aq2 >= 0 && aq2 < side_) {
                x = ai * side_ + aq2;
              }
            }
            if (x < 0) {
              dead[l] = 1;
              xs[l] = 0;
            } else {
              xs[l] = x;
            }
          }
        }
      } else {
        // Ablation modes: per-lane calls into the reference lookups.
        for (std::size_t l = 0; l < kLanes; ++l) {
          if (dead[l]) {
            xs[l] = 0;
            continue;
          }
          const linalg::cplx eff{static_cast<double>(er[l]),
                                 static_cast<double>(ei[l])};
          const int x = mode_ == Mode::kGenericRank
                            ? lut_->kth_symbol(eff, sel[l], policy_)
                            : c_->kth_nearest_exact(eff, sel[l]);
          if (x < 0) {
            dead[l] = 1;
            xs[l] = 0;
          } else {
            xs[l] = x;
          }
        }
      }
    }

    // Decided point + partial Euclidean distance, all lanes.
    const T* rx_re_row = rx_.re.data() + i * q;
    const T* rx_im_row = rx_.im.data() + i * q;
    for (std::size_t l = 0; l < kLanes; ++l) {
      const std::int32_t x = xs[l];
      sre[i][l] = pt_.re[static_cast<std::size_t>(x)];
      sim[i][l] = pt_.im[static_cast<std::size_t>(x)];
      const T dr = br[l] - rx_re_row[static_cast<std::size_t>(x)];
      const T dj = bi[l] - rx_im_row[static_cast<std::size_t>(x)];
      acc[l] += dr * dr + dj * dj;
    }
  }

  for (std::size_t l = 0; l < kLanes; ++l) {
    out[l] = dead[l] ? std::numeric_limits<double>::infinity()
                     : static_cast<double>(acc[l]);
  }
}

template <typename T>
void PathPlanT<T>::path_metric_block(std::span<const linalg::cplx> ybar,
                                     std::size_t first_path,
                                     std::size_t n_paths, double* out) const {
  assert(compiled() && ybar.size() == nt_);
  assert(first_path + n_paths <= num_paths_);
  double tmp[kLanes];
  std::size_t written = 0;
  while (written < n_paths) {
    const std::size_t p = first_path + written;
    const std::size_t block = p / kLanes;
    const std::size_t lane0 = p % kLanes;
    eval_block(ybar.data(), block, tmp);
    const std::size_t take = std::min(n_paths - written, kLanes - lane0);
    for (std::size_t k = 0; k < take; ++k) out[written + k] = tmp[lane0 + k];
    written += take;
  }
}

template class PathPlanT<double>;
template class PathPlanT<float>;

}  // namespace flexcore::detect
