#include "detect/kbest.h"

#include <algorithm>
#include <chrono>

namespace flexcore::detect {

void KBestDetector::set_channel(const CMat& h, double /*noise_var*/) {
  qr_ = linalg::sorted_qr_wubben(h);
  const std::size_t nt = qr_.R.cols();
  const int q = constellation_->order();
  rx_.assign(nt, CVec(static_cast<std::size_t>(q)));
  for (std::size_t i = 0; i < nt; ++i) {
    for (int x = 0; x < q; ++x) {
      rx_[i][static_cast<std::size_t>(x)] = qr_.R(i, i) * constellation_->point(x);
    }
  }
}

void KBestDetector::detect_into(const CVec& y, Workspace& ws,
                                DetectionResult* res) const {
  const CMat& r = qr_.R;
  const std::size_t nt = r.cols();
  const std::size_t q = static_cast<std::size_t>(constellation_->order());
  ws.ybar.resize(nt);
  linalg::hermitian_mul_into(qr_.Q, y, ws.ybar);

  // Survivor paths are stored flat with stride nt: entry s holds the
  // symbols of the levels processed so far, path[s * nt + d] being the
  // decision of the d-th processed level (tree level nt-1-d).  Peds in
  // ws.d0; candidate peds in ws.d1; the double-buffered paths live in
  // ws.i0/ws.i1, swapped per level.
  DetectionStats stats;
  std::size_t survivors = 1;
  ws.d0.assign(1, 0.0);
  ws.i0.resize(k_ * nt);
  ws.i1.resize(k_ * nt);

  for (std::size_t ii = 0; ii < nt; ++ii) {
    const std::size_t i = nt - 1 - ii;
    const std::size_t cands = survivors * q;
    ws.d1.resize(cands);
    for (std::size_t s = 0; s < survivors; ++s) {
      cplx b = ws.ybar[i];
      const int* path = ws.i0.data() + s * nt;
      for (std::size_t j = i + 1; j < nt; ++j) {
        b -= r(i, j) * constellation_->point(path[nt - 1 - j]);
        stats.real_mults += 4;
        stats.flops += 8;
      }
      for (std::size_t x = 0; x < q; ++x) {
        ws.d1[s * q + x] = ws.d0[s] + linalg::abs2(b - rx_[i][x]);
      }
      stats.real_mults += 2 * q;
      stats.flops += 5 * q;
      ++stats.nodes_visited;
    }
    // Keep the K lowest-PED candidates; ties break on candidate index so
    // the selection is deterministic.
    const std::size_t keep = std::min(k_, cands);
    ws.idx.resize(cands);
    for (std::size_t c = 0; c < cands; ++c) ws.idx[c] = c;
    std::partial_sort(ws.idx.begin(),
                      ws.idx.begin() + static_cast<std::ptrdiff_t>(keep),
                      ws.idx.end(), [&](std::size_t a, std::size_t b) {
                        return ws.d1[a] != ws.d1[b] ? ws.d1[a] < ws.d1[b]
                                                    : a < b;
                      });
    ws.d0.resize(keep);  // old peds are already folded into ws.d1
    for (std::size_t t = 0; t < keep; ++t) {
      const std::size_t c = ws.idx[t];
      const std::size_t s = c / q;
      int* dst = ws.i1.data() + t * nt;
      const int* src = ws.i0.data() + s * nt;
      for (std::size_t d = 0; d < ii; ++d) dst[d] = src[d];
      dst[ii] = static_cast<int>(c % q);
      ws.d0[t] = ws.d1[c];
    }
    std::swap(ws.i0, ws.i1);
    survivors = keep;
  }

  // Survivor 0 has the minimum PED (the selection sorts ascending).
  const int* best = ws.i0.data();
  ws.symbols.resize(nt);
  for (std::size_t ii = 0; ii < nt; ++ii) {
    ws.symbols[nt - 1 - ii] = best[ii];  // path was built top level first
  }

  res->symbols = linalg::unpermute(ws.symbols, qr_.perm);
  res->metric = ws.d0[0];
  res->stats = stats;
  res->stats.paths_evaluated = k_;
}

DetectionResult KBestDetector::detect(const CVec& y) const {
  Workspace ws;
  DetectionResult res;
  detect_into(y, ws, &res);
  return res;
}

void KBestDetector::detect_batch(std::span<const CVec> ys,
                                 BatchResult* out) const {
  out->results.resize(ys.size());
  out->stats = DetectionStats{};
  out->sic_fallbacks = 0;
  out->tasks = ys.size();

  Workspace ws;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t v = 0; v < ys.size(); ++v) {
    detect_into(ys[v], ws, &out->results[v]);
    out->stats += out->results[v].stats;
  }
  out->elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

}  // namespace flexcore::detect
