// Common interface of all MIMO detectors in this library.
//
// A detector consumes one received vector y (one OFDM subcarrier of one
// MIMO-OFDM symbol) and produces hard symbol decisions for all Nt transmit
// streams.  Channel-dependent work (QR decompositions, FlexCore
// pre-processing, filter matrices) happens once in set_channel and is reused
// for every y until the channel changes — mirroring the paper's split
// between per-channel pre-processing and per-vector detection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "modulation/constellation.h"

namespace flexcore::detect {

using linalg::CMat;
using linalg::CVec;
using linalg::cplx;
using modulation::Constellation;

/// Instrumentation counters filled in by detectors.  `real_mults` uses the
/// accounting of the paper's Table 2 (one complex multiply = 4 real
/// multiplies); `flops` additionally counts additions (complex multiply =
/// 6 flops, complex add = 2 flops) for the Table 1 reproduction.
struct DetectionStats {
  std::uint64_t nodes_visited = 0;
  std::uint64_t real_mults = 0;
  std::uint64_t flops = 0;
  std::uint64_t paths_evaluated = 0;

  DetectionStats& operator+=(const DetectionStats& o) {
    nodes_visited += o.nodes_visited;
    real_mults += o.real_mults;
    flops += o.flops;
    paths_evaluated += o.paths_evaluated;
    return *this;
  }
};

/// Hard detection output.
struct DetectionResult {
  /// Detected symbol index per transmit antenna, in the ORIGINAL antenna
  /// order (any internal column sorting is undone before returning).
  std::vector<int> symbols;
  /// Euclidean distance ||y - H s_hat||^2 of the selected hypothesis in the
  /// detector's internal (QR-rotated) coordinates.
  double metric = 0.0;
  DetectionStats stats;
};

/// Abstract MIMO detector.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Installs a new channel.  `noise_var` is the per-receive-antenna complex
  /// noise variance (Es = 1 constellations assumed).
  virtual void set_channel(const CMat& h, double noise_var) = 0;

  /// Detects one received vector.  Requires a prior set_channel call.
  virtual DetectionResult detect(const CVec& y) const = 0;

  /// Short identifier used in benchmark tables ("flexcore", "fcsd-L2", ...).
  virtual std::string name() const = 0;

  /// Number of parallel tasks (processing elements at minimum latency) this
  /// detector spreads one vector's detection across.  1 for sequential
  /// detectors.
  virtual std::size_t parallel_tasks() const { return 1; }
};

}  // namespace flexcore::detect
