// Common interface of all MIMO detectors in this library.
//
// A detector consumes one received vector y (one OFDM subcarrier of one
// MIMO-OFDM symbol) and produces hard symbol decisions for all Nt transmit
// streams.  Channel-dependent work (QR decompositions, FlexCore
// pre-processing, filter matrices) happens once in set_channel and is reused
// for every y until the channel changes — mirroring the paper's split
// between per-channel pre-processing and per-vector detection.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "modulation/constellation.h"

namespace flexcore::parallel {
class ThreadPool;
}  // namespace flexcore::parallel

namespace flexcore::detect {

using linalg::CMat;
using linalg::CVec;
using linalg::cplx;
using modulation::Constellation;

/// Instrumentation counters filled in by detectors.  `real_mults` uses the
/// accounting of the paper's Table 2 (one complex multiply = 4 real
/// multiplies); `flops` additionally counts additions (complex multiply =
/// 6 flops, complex add = 2 flops) for the Table 1 reproduction.
struct DetectionStats {
  std::uint64_t nodes_visited = 0;
  std::uint64_t real_mults = 0;
  std::uint64_t flops = 0;
  std::uint64_t paths_evaluated = 0;

  DetectionStats& operator+=(const DetectionStats& o) {
    nodes_visited += o.nodes_visited;
    real_mults += o.real_mults;
    flops += o.flops;
    paths_evaluated += o.paths_evaluated;
    return *this;
  }
};

/// Hard detection output.
struct DetectionResult {
  /// Detected symbol index per transmit antenna, in the ORIGINAL antenna
  /// order (any internal column sorting is undone before returning).
  std::vector<int> symbols;
  /// Euclidean distance ||y - H s_hat||^2 of the selected hypothesis in the
  /// detector's internal (QR-rotated) coordinates.
  double metric = 0.0;
  DetectionStats stats;
};

/// Output of one Detector::detect_batch call.
///
/// Batch API contract:
///  * `results` holds one DetectionResult per input vector, in input order,
///    identical (symbols and metric) to what per-vector detect() returns.
///  * `stats` is the sum of the per-vector stats.  Path-parallel overrides
///    (FlexCore, FCSD) run the grid with the uninstrumented metric-only
///    kernel and attribute only the winning path's walk to each vector, so
///    absolute counter values are lower than the sequential default loop's;
///    `paths_evaluated` always reflects the full grid.
///  * `sic_fallbacks` counts vectors for which every path was deactivated
///    (FlexCore's out-of-constellation policy) and the detector fell back
///    to plain SIC slicing — the raw task grid punts this policy to
///    detect_batch.
///  * `tasks` is the units of parallel work (vectors * paths for grid
///    detectors, plain vector count for the sequential default).
///  * `elapsed_seconds` is the wall-clock of the detection kernel (for grid
///    overrides: rotation + path grid + min-reduction, the paper's Fig. 11
///    timing; winner reconstruction is excluded).
struct BatchResult {
  std::vector<DetectionResult> results;
  DetectionStats stats;
  std::size_t sic_fallbacks = 0;
  std::size_t tasks = 0;
  double elapsed_seconds = 0.0;
};

/// Abstract MIMO detector.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Installs a new channel.  `noise_var` is the per-receive-antenna complex
  /// noise variance (Es = 1 constellations assumed).
  virtual void set_channel(const CMat& h, double noise_var) = 0;

  /// Detects one received vector.  Requires a prior set_channel call.
  virtual DetectionResult detect(const CVec& y) const = 0;

  /// Detects a batch of received vectors sharing the installed channel.
  /// This is the primary entry point for drivers: the base implementation
  /// is a sequential detect() loop; path-parallel detectors (FlexCore,
  /// FCSD) override it to fan the flat vector x path task grid across the
  /// attached thread pool (see set_thread_pool).  See BatchResult for the
  /// output contract.
  virtual void detect_batch(std::span<const CVec> ys, BatchResult* out) const;

  /// Attaches a (non-owning) thread pool for detect_batch overrides to fan
  /// work across; pass nullptr to detach.  Sequential detectors ignore it.
  /// api::UplinkPipeline wires its own pool in automatically.
  virtual void set_thread_pool(parallel::ThreadPool* pool);

  /// Short identifier used in benchmark tables ("flexcore-64", "fcsd-L2",
  /// ...).  api::make_detector accepts exactly these spellings.
  virtual std::string name() const = 0;

  /// Number of parallel tasks (processing elements at minimum latency) this
  /// detector spreads one vector's detection across.  1 for sequential
  /// detectors.
  virtual std::size_t parallel_tasks() const { return 1; }
};

}  // namespace flexcore::detect
