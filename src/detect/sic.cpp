#include "detect/sic.h"

namespace flexcore::detect {

void SicDetector::set_channel(const CMat& h, double /*noise_var*/) {
  qr_ = linalg::sorted_qr_wubben(h);
}

DetectionResult SicDetector::detect(const CVec& y) const {
  const CMat& r = qr_.R;
  const std::size_t nt = r.cols();
  const CVec ybar = qr_.Q.hermitian() * y;

  std::vector<int> detected(nt);
  CVec s(nt);
  double metric = 0.0;
  DetectionStats stats;
  stats.paths_evaluated = 1;

  for (std::size_t ii = 0; ii < nt; ++ii) {
    const std::size_t i = nt - 1 - ii;  // level i+1, detected top-down
    cplx b = ybar[i];
    for (std::size_t j = i + 1; j < nt; ++j) {
      b -= r(i, j) * s[j];
      stats.real_mults += 4;
      stats.flops += 8;
    }
    const cplx eff = b / r(i, i);
    detected[i] = constellation_->slice(eff);
    s[i] = constellation_->point(detected[i]);
    metric += linalg::abs2(b - r(i, i) * s[i]);
    stats.real_mults += 4;
    stats.flops += 11;  // complex mult + sub + abs2
    ++stats.nodes_visited;
  }

  DetectionResult res;
  res.symbols = linalg::unpermute(detected, qr_.perm);
  res.metric = metric;
  res.stats = stats;
  return res;
}

}  // namespace flexcore::detect
