#include "detect/sic.h"

#include <cassert>
#include <chrono>

namespace flexcore::detect {

void SicDetector::set_channel(const CMat& h, double /*noise_var*/) {
  qr_ = linalg::sorted_qr_wubben(h);
}

void SicDetector::rotate_into(const CVec& y, std::span<cplx> out) const {
  linalg::hermitian_mul_into(qr_.Q, y, out);
}

void SicDetector::detect_into(const CVec& y, Workspace& ws,
                              DetectionResult* res) const {
  const CMat& r = qr_.R;
  const std::size_t nt = r.cols();
  ws.ybar.resize(nt);
  rotate_into(y, ws.ybar);
  ws.symbols.assign(nt, 0);
  ws.s.assign(nt, cplx{0.0, 0.0});

  double metric = 0.0;
  DetectionStats stats;
  stats.paths_evaluated = 1;

  for (std::size_t ii = 0; ii < nt; ++ii) {
    const std::size_t i = nt - 1 - ii;  // level i+1, detected top-down
    cplx b = ws.ybar[i];
    for (std::size_t j = i + 1; j < nt; ++j) {
      b -= r(i, j) * ws.s[j];
      stats.real_mults += 4;
      stats.flops += 8;
    }
    const cplx eff = b / r(i, i);
    ws.symbols[i] = constellation_->slice(eff);
    ws.s[i] = constellation_->point(ws.symbols[i]);
    metric += linalg::abs2(b - r(i, i) * ws.s[i]);
    stats.real_mults += 4;
    stats.flops += 11;  // complex mult + sub + abs2
    ++stats.nodes_visited;
  }

  res->symbols = linalg::unpermute(ws.symbols, qr_.perm);
  res->metric = metric;
  res->stats = stats;
}

DetectionResult SicDetector::detect(const CVec& y) const {
  Workspace ws;
  DetectionResult res;
  detect_into(y, ws, &res);
  return res;
}

void SicDetector::detect_batch(std::span<const CVec> ys,
                               BatchResult* out) const {
  out->results.resize(ys.size());
  out->stats = DetectionStats{};
  out->sic_fallbacks = 0;
  out->tasks = ys.size();

  Workspace ws;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t v = 0; v < ys.size(); ++v) {
    detect_into(ys[v], ws, &out->results[v]);
    out->stats += out->results[v].stats;
  }
  out->elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

}  // namespace flexcore::detect
