// Fixed Complexity Sphere Decoder (Barbero & Thompson), the paper's main
// competitor.
//
// The FCSD fully expands the top `full_levels` (L) tree levels — visiting
// all |Q|^L combinations — and extends each combination greedily (branching
// factor one, nearest child) through the remaining Nt - L levels.  All
// |Q|^L paths are independent, so at minimum latency the FCSD needs exactly
// |Q|^L processing elements: the inflexibility FlexCore removes (§2).
#pragma once

#include <span>

#include "detect/detector.h"
#include "detect/path_grid.h"
#include "detect/path_kernels.h"
#include "detect/workspace.h"
#include "linalg/qr.h"

namespace flexcore::detect {

class FcsdDetector : public Detector {
 public:
  /// `full_levels` = L, the number of fully-expanded levels (1 or 2 in the
  /// paper's evaluation).  `precision` selects the compute tier of the
  /// path grids (spec suffix ":fp32" or ":i16"); everything outside the
  /// grid stays double.
  FcsdDetector(const Constellation& c, std::size_t full_levels,
               Precision precision = Precision::kFloat64)
      : constellation_(&c), full_levels_(full_levels), precision_(precision) {}

  void set_channel(const CMat& h, double noise_var) override;
  DetectionResult detect(const CVec& y) const override;

  /// Batched detection over the attached thread pool: fans the flat
  /// vector x path grid (all |Q|^L paths per vector) across the pool and
  /// reconstructs the winning path per vector.  Symbols and metrics are
  /// identical to per-vector detect(); without an attached pool this falls
  /// back to the sequential base-class loop.
  void detect_batch(std::span<const CVec> ys,
                    BatchResult* out) const override;
  void set_thread_pool(parallel::ThreadPool* pool) override { pool_ = pool; }

  std::string name() const override {
    return "fcsd-L" + std::to_string(full_levels_) +
           precision_suffix(precision_);
  }
  std::size_t parallel_tasks() const override { return num_paths(); }

  /// |Q|^L — the number of independent paths / required PEs.
  std::size_t num_paths() const;
  std::size_t full_levels() const noexcept { return full_levels_; }

  /// Writes ybar = Q^H y into `out` without allocating.  out.size() must be
  /// Nt (= R.cols()).
  void rotate_into(const CVec& y, std::span<linalg::cplx> out) const;

  /// Rotates a received vector into the tree-search domain (ybar = Q^H y).
  CVec rotate(const CVec& y) const {
    CVec out(qr_.R.cols());
    rotate_into(y, out);
    return out;
  }

  /// Evaluation of a single FCSD path, the unit of parallel work.
  struct PathEval {
    double metric = 0.0;
    std::vector<int> symbols;  // permuted (tree) order
    DetectionStats stats;
  };

  /// Evaluates path `path_index` in [0, num_paths()): the base-|Q| digits of
  /// the index select the symbols of the fully-expanded top levels.  Thread-
  /// safe; used directly by the parallel engine benchmarks.
  PathEval evaluate_path(const CVec& ybar, std::size_t path_index) const;

  /// Buffer-reusing instrumented path walk: symbol decisions land in
  /// ws.symbols (tree order), scratch in ws.s, counters overwrite *stats.
  /// Every FCSD path is valid, so there is no failure mode.
  void evaluate_path(std::span<const linalg::cplx> ybar,
                     std::size_t path_index, detect::Workspace& ws,
                     double* metric, DetectionStats* stats) const;

  /// Metric-only path walk (no allocation / instrumentation) for the
  /// task grids' hot loop.  Requires Nt <= 32.  Always double precision.
  double path_metric(std::span<const linalg::cplx> ybar,
                     std::size_t path_index) const;

  /// Lane-parallel block kernel over the PathPlan compiled by set_channel
  /// (the configured precision tier).  Bit-identical to path_metric per
  /// path at kFloat64.  Thread-safe, allocation-free.
  void path_metric_block(std::span<const linalg::cplx> ybar,
                         std::size_t first_path, std::size_t n_paths,
                         double* out_metrics) const {
    if (precision_ == Precision::kInt16) {
      plan16_.path_metric_block(ybar, first_path, n_paths, out_metrics);
    } else if (precision_ == Precision::kFloat32) {
      plan32_.path_metric_block(ybar, first_path, n_paths, out_metrics);
    } else {
      plan64_.path_metric_block(ybar, first_path, n_paths, out_metrics);
    }
  }

  Precision precision() const noexcept { return precision_; }

  /// Heap footprint of the compiled plan of the configured tier.
  std::size_t plan_footprint_bytes() const {
    switch (precision_) {
      case Precision::kInt16: return plan16_.footprint_bytes();
      case Precision::kFloat32: return plan32_.footprint_bytes();
      default: return plan64_.footprint_bytes();
    }
  }

  /// The quantized plan of the current channel (compiled only when the
  /// configured precision is kInt16).
  const PathPlanI16& plan_i16() const noexcept { return plan16_; }

  /// Builds the final DetectionResult of one vector from a grid verdict:
  /// an instrumented walk of the winning path, symbols in ORIGINAL antenna
  /// order.  Always returns false (FCSD has no fallback).  Scratch in `ws`.
  bool reconstruct_winner(std::span<const linalg::cplx> ybar,
                          std::size_t best_path, double best_metric,
                          detect::Workspace& ws, DetectionResult* res) const;

  const linalg::QrResult& qr() const noexcept { return qr_; }

 private:
  const Constellation* constellation_;
  std::size_t full_levels_;
  Precision precision_;
  parallel::ThreadPool* pool_ = nullptr;
  linalg::QrResult qr_;
  std::vector<CVec> rx_;  // rx_[i][x] = R(i,i) * point(x)
  // Compiled path plans for the block kernel (only the configured
  // precision tier is compiled per set_channel).
  PathPlan plan64_;
  PathPlanF plan32_;
  PathPlanI16 plan16_;
  // Per-worker reconstruction scratch plus the reusable grid output, kept
  // across detect_batch calls so repeated per-subcarrier batches stay at
  // their high-water mark (zero steady-state allocations).  Guarded by the
  // detect_batch contract (one driver thread at a time).
  mutable detect::WorkspaceBank workspaces_;
  mutable PathGridOutput grid_;
};

}  // namespace flexcore::detect
