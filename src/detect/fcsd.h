// Fixed Complexity Sphere Decoder (Barbero & Thompson), the paper's main
// competitor.
//
// The FCSD fully expands the top `full_levels` (L) tree levels — visiting
// all |Q|^L combinations — and extends each combination greedily (branching
// factor one, nearest child) through the remaining Nt - L levels.  All
// |Q|^L paths are independent, so at minimum latency the FCSD needs exactly
// |Q|^L processing elements: the inflexibility FlexCore removes (§2).
#pragma once

#include "detect/detector.h"
#include "linalg/qr.h"

namespace flexcore::detect {

class FcsdDetector : public Detector {
 public:
  /// `full_levels` = L, the number of fully-expanded levels (1 or 2 in the
  /// paper's evaluation).
  FcsdDetector(const Constellation& c, std::size_t full_levels)
      : constellation_(&c), full_levels_(full_levels) {}

  void set_channel(const CMat& h, double noise_var) override;
  DetectionResult detect(const CVec& y) const override;

  /// Batched detection over the attached thread pool: fans the flat
  /// vector x path grid (all |Q|^L paths per vector) across the pool and
  /// reconstructs the winning path per vector.  Symbols and metrics are
  /// identical to per-vector detect(); without an attached pool this falls
  /// back to the sequential base-class loop.
  void detect_batch(std::span<const CVec> ys,
                    BatchResult* out) const override;
  void set_thread_pool(parallel::ThreadPool* pool) override { pool_ = pool; }

  std::string name() const override {
    return "fcsd-L" + std::to_string(full_levels_);
  }
  std::size_t parallel_tasks() const override { return num_paths(); }

  /// |Q|^L — the number of independent paths / required PEs.
  std::size_t num_paths() const;
  std::size_t full_levels() const noexcept { return full_levels_; }

  /// Rotates a received vector into the tree-search domain (ybar = Q^H y).
  CVec rotate(const CVec& y) const { return qr_.Q.hermitian() * y; }

  /// Evaluation of a single FCSD path, the unit of parallel work.
  struct PathEval {
    double metric = 0.0;
    std::vector<int> symbols;  // permuted (tree) order
    DetectionStats stats;
  };

  /// Evaluates path `path_index` in [0, num_paths()): the base-|Q| digits of
  /// the index select the symbols of the fully-expanded top levels.  Thread-
  /// safe; used directly by the parallel engine benchmarks.
  PathEval evaluate_path(const CVec& ybar, std::size_t path_index) const;

  /// Metric-only path walk (no allocation / instrumentation) for the
  /// parallel engine's hot loop.  Requires Nt <= 32.
  double path_metric(const CVec& ybar, std::size_t path_index) const;

  const linalg::QrResult& qr() const noexcept { return qr_; }

 private:
  const Constellation* constellation_;
  std::size_t full_levels_;
  parallel::ThreadPool* pool_ = nullptr;
  linalg::QrResult qr_;
  std::vector<CVec> rx_;  // rx_[i][x] = R(i,i) * point(x)
};

}  // namespace flexcore::detect
