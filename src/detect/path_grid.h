// The flat task grids at the heart of FlexCore's parallel detection (paper
// §4): the GPU implementation generates Nsc * |E| threads (FlexCore) or
// Nsc * |Q|^L threads (FCSD); here the same grids are executed by a
// ThreadPool.
//
// Two granularities are provided:
//  * run_path_grid  — the single-channel (vector x path) grid behind
//    Detector::detect_batch; the Fig. 11 benchmark times exactly this grid.
//  * run_frame_grid — the multi-channel (subcarrier x vector x path) grid
//    behind api::UplinkPipeline::detect_frame: one flat job covering every
//    subcarrier of an OFDM frame, with all rotated vectors living in one
//    reusable flat buffer so steady-state tasks allocate nothing.
#pragma once

#include <chrono>
#include <concepts>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "linalg/types.h"
#include "parallel/thread_pool.h"

namespace flexcore::detect {

/// A detector whose per-vector work decomposes into independent fixed paths.
template <typename D>
concept PathParallelDetector = requires(const D& d, const linalg::CVec& y,
                                        std::size_t i) {
  { d.path_metric(y, i) } -> std::convertible_to<double>;
  { d.rotate(y) } -> std::convertible_to<linalg::CVec>;
};

/// A path-parallel detector with allocation-free span kernels, as required
/// by the multi-channel frame grid.
template <typename D>
concept FrameParallelDetector = requires(const D& d, const linalg::CVec& y,
                                         std::span<linalg::cplx> out,
                                         std::span<const linalg::cplx> ybar,
                                         std::size_t i) {
  d.rotate_into(y, out);
  { d.path_metric(ybar, i) } -> std::convertible_to<double>;
};

/// Output of one single-channel task-grid run.
///
/// A best_metric of +infinity means every path of that vector was
/// deactivated (FlexCore's out-of-constellation policy).  The grid itself
/// intentionally does not replicate the SIC-fallback policy; callers that
/// need full DetectionResults should go through Detector::detect_batch,
/// which applies it.
struct PathGridOutput {
  std::vector<linalg::CVec> ybars;     ///< rotated inputs (Q^H y), per vector
  std::vector<std::size_t> best_path;  ///< winning path index per vector
  std::vector<double> best_metric;     ///< its Euclidean distance
  double elapsed_seconds = 0.0;        ///< wall-clock of the task grid
  std::size_t tasks = 0;               ///< vectors * paths
};

/// Runs the full vector x path grid for a batch of received vectors (all
/// sharing the channel installed in `det`) across `pool`.
template <PathParallelDetector D>
PathGridOutput run_path_grid(const D& det, std::size_t num_paths,
                             std::span<const linalg::CVec> ys,
                             parallel::ThreadPool& pool) {
  const std::size_t nv = ys.size();
  PathGridOutput out;
  out.tasks = nv * num_paths;
  out.best_path.assign(nv, 0);
  out.best_metric.assign(nv, std::numeric_limits<double>::infinity());
  if (nv == 0 || num_paths == 0) return out;

  // Rotation (ybar = Q^H y) is part of the measured work, as in the paper's
  // kernel timing.
  const auto t0 = std::chrono::steady_clock::now();

  out.ybars.resize(nv);
  pool.parallel_for(nv, [&](std::size_t v) { out.ybars[v] = det.rotate(ys[v]); });

  std::vector<double> metrics(out.tasks);
  pool.parallel_for(
      out.tasks,
      [&](std::size_t t) {
        metrics[t] = det.path_metric(out.ybars[t / num_paths], t % num_paths);
      },
      /*chunk=*/num_paths);  // one vector's paths per chunk: cache-friendly

  // Min-reduction per vector (the paper's pipelined minimum tree).
  pool.parallel_for(nv, [&](std::size_t v) {
    const double* m = metrics.data() + v * num_paths;
    std::size_t best = 0;
    for (std::size_t p = 1; p < num_paths; ++p) {
      if (m[p] < m[best]) best = p;
    }
    out.best_path[v] = best;
    out.best_metric[v] = m[best];
  });

  out.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return out;
}

/// Output of one multi-channel frame-grid run.  "Unit" u = f * nv + t is
/// the (subcarrier f, vector t) pair, subcarrier-major — the same layout as
/// the input vectors.  Buffers are resized, never shrunk, so reusing the
/// same FrameGridOutput across frames of equal (or smaller) shape performs
/// no allocation at all.
struct FrameGridOutput {
  std::vector<linalg::cplx> ybars;     ///< flat rotated inputs, nt per unit
  std::vector<std::size_t> best_path;  ///< winning path index per unit
  std::vector<double> best_metric;     ///< its distance (+inf: all paths dead)
  std::size_t nt = 0;                  ///< levels per rotated vector
  std::size_t tasks = 0;               ///< sum over subcarriers of nv * paths
  double elapsed_seconds = 0.0;        ///< wall-clock of the task grid

  std::span<const linalg::cplx> ybar(std::size_t unit) const {
    return {ybars.data() + unit * nt, nt};
  }
};

/// Runs the subcarrier x vector x path grid of one frame: `dets[f]` is the
/// per-subcarrier detector (channel already installed) evaluating
/// `num_paths[f]` paths for each of the `vectors_per_channel` vectors
/// `ys[f * vectors_per_channel + ...]`.  Each task rotates its vector into
/// the flat ybar buffer and scans its paths with the metric-only span
/// kernel, tracking the minimum inline (strict <, first index wins — the
/// same tie-break as the sequential reduction, so results are bit-identical
/// at any thread count).  Steady-state tasks perform zero heap allocations.
template <FrameParallelDetector D>
void run_frame_grid(std::span<const D* const> dets,
                    std::span<const std::size_t> num_paths,
                    std::span<const linalg::CVec> ys,
                    std::size_t vectors_per_channel, std::size_t nt,
                    parallel::ThreadPool& pool, FrameGridOutput* out) {
  const std::size_t nsc = dets.size();
  const std::size_t units = nsc * vectors_per_channel;
  out->nt = nt;
  out->tasks = 0;
  for (std::size_t f = 0; f < nsc; ++f) {
    out->tasks += vectors_per_channel * num_paths[f];
  }
  out->ybars.resize(units * nt);
  out->best_path.assign(units, 0);
  out->best_metric.assign(units, std::numeric_limits<double>::infinity());
  if (units == 0) {
    out->elapsed_seconds = 0.0;
    return;
  }

  const auto t0 = std::chrono::steady_clock::now();
  pool.parallel_for(units, [&](std::size_t u) {
    const std::size_t f = u / vectors_per_channel;
    const D& det = *dets[f];
    const std::span<linalg::cplx> ybar{out->ybars.data() + u * nt, nt};
    det.rotate_into(ys[u], ybar);
    const std::size_t paths = num_paths[f];
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_p = 0;
    for (std::size_t p = 0; p < paths; ++p) {
      const double m = det.path_metric(std::span<const linalg::cplx>(ybar), p);
      if (m < best) {
        best = m;
        best_p = p;
      }
    }
    out->best_path[u] = best_p;
    out->best_metric[u] = best;
  });
  out->elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace flexcore::detect
