// The flat task grids at the heart of FlexCore's parallel detection (paper
// §4): the GPU implementation generates Nsc * |E| threads (FlexCore) or
// Nsc * |Q|^L threads (FCSD); here the same grids are executed by a
// ThreadPool, with each task scanning its paths through the lane-parallel
// block kernel (detect/path_kernels.h) where the detector provides one.
//
// Two granularities are provided:
//  * run_path_grid  — the single-channel (vector x path) grid behind
//    Detector::detect_batch; the Fig. 11 benchmark times exactly this grid.
//  * run_frame_grid — the multi-channel (subcarrier x vector x path) grid
//    behind api::UplinkPipeline::detect_frame: one flat job covering every
//    subcarrier of an OFDM frame.
//
// Both grids write into caller-owned output structs whose buffers are
// resized, never shrunk, so steady-state runs perform zero heap
// allocations (verified by the operator-new-counting tests in
// tests/frame_test.cpp).
#pragma once

#include <chrono>
#include <concepts>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "linalg/simd.h"
#include "linalg/types.h"
#include "parallel/hot_path.h"
#include "parallel/thread_pool.h"

namespace flexcore::detect {

/// A detector whose per-vector work decomposes into independent fixed
/// paths, with allocation-free span kernels: rotate_into writes ybar = Q^H y
/// into a caller buffer and path_metric scores one path of a rotated
/// vector.
template <typename D>
concept PathParallelDetector = requires(const D& d, const linalg::CVec& y,
                                        std::span<linalg::cplx> out,
                                        std::span<const linalg::cplx> ybar,
                                        std::size_t i) {
  d.rotate_into(y, out);
  { d.path_metric(ybar, i) } -> std::convertible_to<double>;
};

/// A path-parallel detector that additionally exposes the lane-parallel
/// block kernel (detect/path_kernels.h): path_metric_block scores a whole
/// block of paths per call.  The grids use it automatically.
template <typename D>
concept BlockKernelDetector =
    PathParallelDetector<D> &&
    requires(const D& d, std::span<const linalg::cplx> ybar, std::size_t i,
             double* out) {
      d.path_metric_block(ybar, i, i, out);
    };

/// Paths per block-kernel call.  Sized for the widest tier: the int16
/// quantized plans evaluate a FUSED PAIR of 16-lane blocks per kernel call
/// (2 x kSimdLanesI16 = 32 paths — adjacent blocks share every per-level
/// scalar broadcast), and the fp plans accept any range (they re-block
/// internally), so scanning at this width never double-evaluates a block
/// in any tier and leaves the fp64 min-reduction order — hence its
/// bit-exact results — unchanged.
inline constexpr std::size_t kPathBlockLanes = 2 * linalg::kSimdLanesI16;

/// Scans paths [0, num_paths) of one rotated vector, tracking the minimum
/// inline (strict <, first index wins — the sequential reduction's
/// tie-break, so results are bit-identical at any thread count and block
/// width).  Uses the block kernel when the detector has one.
template <typename D>
FLEXCORE_HOT_PATH
inline void scan_paths(const D& det, std::span<const linalg::cplx> ybar,
                       std::size_t num_paths, std::size_t* best_path,
                       double* best_metric) {
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_p = 0;
  if constexpr (BlockKernelDetector<D>) {
    double m[kPathBlockLanes];
    for (std::size_t p = 0; p < num_paths; p += kPathBlockLanes) {
      const std::size_t n = std::min(kPathBlockLanes, num_paths - p);
      det.path_metric_block(ybar, p, n, m);
      for (std::size_t k = 0; k < n; ++k) {
        if (m[k] < best) {
          best = m[k];
          best_p = p + k;
        }
      }
    }
  } else {
    for (std::size_t p = 0; p < num_paths; ++p) {
      const double m = det.path_metric(ybar, p);
      if (m < best) {
        best = m;
        best_p = p;
      }
    }
  }
  *best_path = best_p;
  *best_metric = best;
}

/// Output of one single-channel task-grid run.  Rotated inputs live in one
/// flat buffer, nt per vector; buffers are resized, never shrunk, so
/// reusing the same PathGridOutput across batches of equal (or smaller)
/// shape performs no allocation at all.
///
/// A best_metric of +infinity means every path of that vector was
/// deactivated (FlexCore's out-of-constellation policy).  The grid itself
/// intentionally does not replicate the SIC-fallback policy; callers that
/// need full DetectionResults should go through Detector::detect_batch,
/// which applies it.
struct PathGridOutput {
  // flexcore-lint: allow-next-line(HP005) documented AoS handoff to detectors
  std::vector<linalg::cplx> ybars;     ///< flat rotated inputs, nt per vector
  std::vector<std::size_t> best_path;  ///< winning path index per vector
  std::vector<double> best_metric;     ///< its Euclidean distance
  std::size_t nt = 0;                  ///< levels per rotated vector
  double elapsed_seconds = 0.0;        ///< wall-clock of the task grid
  std::size_t tasks = 0;               ///< vectors * paths

  std::span<const linalg::cplx> ybar(std::size_t v) const {
    return {ybars.data() + v * nt, nt};
  }
};

/// Runs the full vector x path grid for a batch of received vectors (all
/// sharing the channel installed in `det`, whose R has `nt` columns) across
/// `pool`.  Each task rotates its vector into the flat ybar buffer and
/// scans its paths with the min-reduction folded inline (the paper's
/// pipelined minimum tree) — steady-state tasks allocate nothing.
template <PathParallelDetector D>
FLEXCORE_HOT_PATH
void run_path_grid(const D& det, std::size_t num_paths,
                   std::span<const linalg::CVec> ys, std::size_t nt,
                   parallel::ThreadPool& pool, PathGridOutput* out) {
  const std::size_t nv = ys.size();
  out->nt = nt;
  out->tasks = nv * num_paths;
  // flexcore-lint: allow-next-line(HP001) warm-capacity reuse, never shrunk
  out->ybars.resize(nv * nt);
  // flexcore-lint: allow-next-line(HP001) warm-capacity reuse, never shrunk
  out->best_path.assign(nv, 0);
  // flexcore-lint: allow-next-line(HP001) warm-capacity reuse, never shrunk
  out->best_metric.assign(nv, std::numeric_limits<double>::infinity());
  if (nv == 0 || num_paths == 0) {
    out->elapsed_seconds = 0.0;
    return;
  }

  // Rotation (ybar = Q^H y) is part of the measured work, as in the paper's
  // kernel timing.
  const auto t0 = std::chrono::steady_clock::now();
  pool.parallel_for(nv, [&](std::size_t v) {
    const std::span<linalg::cplx> ybar{out->ybars.data() + v * nt, nt};
    det.rotate_into(ys[v], ybar);
    scan_paths(det, std::span<const linalg::cplx>(ybar), num_paths,
               &out->best_path[v], &out->best_metric[v]);
  });
  out->elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Output of one multi-channel frame-grid run.  "Unit" u = f * nv + t is
/// the (subcarrier f, vector t) pair, subcarrier-major — the same layout as
/// the input vectors.  Buffers are resized, never shrunk, so reusing the
/// same FrameGridOutput across frames of equal (or smaller) shape performs
/// no allocation at all.
struct FrameGridOutput {
  // flexcore-lint: allow-next-line(HP005) documented AoS handoff to detectors
  std::vector<linalg::cplx> ybars;     ///< flat rotated inputs, nt per unit
  std::vector<std::size_t> best_path;  ///< winning path index per unit
  std::vector<double> best_metric;     ///< its distance (+inf: all paths dead)
  std::size_t nt = 0;                  ///< levels per rotated vector
  std::size_t tasks = 0;               ///< sum over subcarriers of nv * paths
  double elapsed_seconds = 0.0;        ///< wall-clock of the task grid

  std::span<const linalg::cplx> ybar(std::size_t unit) const {
    return {ybars.data() + unit * nt, nt};
  }
};

/// Runs the subcarrier x vector x path grid of one frame: `dets[f]` is the
/// per-subcarrier detector (channel already installed) evaluating
/// `num_paths[f]` paths for each of the `vectors_per_channel` vectors
/// `ys[f * vectors_per_channel + ...]`.  Each task rotates its vector into
/// the flat ybar buffer and scans its paths (block kernel where available,
/// scalar metric otherwise) with the minimum tracked inline.  Steady-state
/// tasks perform zero heap allocations.
template <PathParallelDetector D>
FLEXCORE_HOT_PATH
void run_frame_grid(std::span<const D* const> dets,
                    std::span<const std::size_t> num_paths,
                    std::span<const linalg::CVec> ys,
                    std::size_t vectors_per_channel, std::size_t nt,
                    parallel::ThreadPool& pool, FrameGridOutput* out) {
  const std::size_t nsc = dets.size();
  const std::size_t units = nsc * vectors_per_channel;
  out->nt = nt;
  out->tasks = 0;
  for (std::size_t f = 0; f < nsc; ++f) {
    out->tasks += vectors_per_channel * num_paths[f];
  }
  // flexcore-lint: allow-next-line(HP001) warm-capacity reuse, never shrunk
  out->ybars.resize(units * nt);
  // flexcore-lint: allow-next-line(HP001) warm-capacity reuse, never shrunk
  out->best_path.assign(units, 0);
  // flexcore-lint: allow-next-line(HP001) warm-capacity reuse, never shrunk
  out->best_metric.assign(units, std::numeric_limits<double>::infinity());
  if (units == 0) {
    out->elapsed_seconds = 0.0;
    return;
  }

  const auto t0 = std::chrono::steady_clock::now();
  pool.parallel_for(units, [&](std::size_t u) {
    const std::size_t f = u / vectors_per_channel;
    const D& det = *dets[f];
    const std::span<linalg::cplx> ybar{out->ybars.data() + u * nt, nt};
    det.rotate_into(ys[u], ybar);
    scan_paths(det, std::span<const linalg::cplx>(ybar), num_paths[f],
               &out->best_path[u], &out->best_metric[u]);
  });
  out->elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace flexcore::detect
