// The flat (vector x path) task grid at the heart of FlexCore's parallel
// detection (paper §4): the GPU implementation generates Nsc * |E| threads
// (FlexCore) or Nsc * |Q|^L threads (FCSD); here the same grid is executed
// by a ThreadPool.
//
// This header is the reusable kernel behind Detector::detect_batch — the
// FlexCore and FCSD overrides route through run_path_grid, and the Fig. 11
// benchmark times exactly this grid for both detectors.  (It previously
// lived in sim/engine.h; sim::batch_detect remains as a deprecated shim.)
#pragma once

#include <chrono>
#include <concepts>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "linalg/types.h"
#include "parallel/thread_pool.h"

namespace flexcore::detect {

/// A detector whose per-vector work decomposes into independent fixed paths.
template <typename D>
concept PathParallelDetector = requires(const D& d, const linalg::CVec& y,
                                        std::size_t i) {
  { d.path_metric(y, i) } -> std::convertible_to<double>;
  { d.rotate(y) } -> std::convertible_to<linalg::CVec>;
};

/// Output of one task-grid run.
///
/// A best_metric of +infinity means every path of that vector was
/// deactivated (FlexCore's out-of-constellation policy).  The grid itself
/// intentionally does not replicate the SIC-fallback policy; callers that
/// need full DetectionResults should go through Detector::detect_batch,
/// which applies it.
struct PathGridOutput {
  std::vector<linalg::CVec> ybars;     ///< rotated inputs (Q^H y), per vector
  std::vector<std::size_t> best_path;  ///< winning path index per vector
  std::vector<double> best_metric;     ///< its Euclidean distance
  double elapsed_seconds = 0.0;        ///< wall-clock of the task grid
  std::size_t tasks = 0;               ///< vectors * paths
};

/// Runs the full vector x path grid for a batch of received vectors (all
/// sharing the channel installed in `det`) across `pool`.
template <PathParallelDetector D>
PathGridOutput run_path_grid(const D& det, std::size_t num_paths,
                             std::span<const linalg::CVec> ys,
                             parallel::ThreadPool& pool) {
  const std::size_t nv = ys.size();
  PathGridOutput out;
  out.tasks = nv * num_paths;
  out.best_path.assign(nv, 0);
  out.best_metric.assign(nv, std::numeric_limits<double>::infinity());
  if (nv == 0 || num_paths == 0) return out;

  // Rotation (ybar = Q^H y) is part of the measured work, as in the paper's
  // kernel timing.
  const auto t0 = std::chrono::steady_clock::now();

  out.ybars.resize(nv);
  pool.parallel_for(nv, [&](std::size_t v) { out.ybars[v] = det.rotate(ys[v]); });

  std::vector<double> metrics(out.tasks);
  pool.parallel_for(
      out.tasks,
      [&](std::size_t t) {
        metrics[t] = det.path_metric(out.ybars[t / num_paths], t % num_paths);
      },
      /*chunk=*/num_paths);  // one vector's paths per chunk: cache-friendly

  // Min-reduction per vector (the paper's pipelined minimum tree).
  pool.parallel_for(nv, [&](std::size_t v) {
    const double* m = metrics.data() + v * num_paths;
    std::size_t best = 0;
    for (std::size_t p = 1; p < num_paths; ++p) {
      if (m[p] < m[best]) best = p;
    }
    out.best_path[v] = best;
    out.best_metric[v] = m[best];
  });

  out.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return out;
}

}  // namespace flexcore::detect
