// Linear detectors: zero-forcing and MMSE.
//
// These are the detectors used by the large-MIMO systems the paper compares
// against (Argos, BigStation, SAM): one filter-matrix multiply per received
// vector, but poor throughput when the channel is ill-conditioned
// (Nt -> Nr), which is exactly the regime FlexCore targets.
#pragma once

#include "detect/detector.h"

namespace flexcore::detect {

/// Which linear equalizer to apply.
enum class LinearKind { kZeroForcing, kMmse };

class LinearDetector : public Detector {
 public:
  LinearDetector(const Constellation& c, LinearKind kind)
      : constellation_(&c), kind_(kind) {}

  void set_channel(const CMat& h, double noise_var) override;
  DetectionResult detect(const CVec& y) const override;
  std::string name() const override {
    return kind_ == LinearKind::kZeroForcing ? "zf" : "mmse";
  }

  /// The equalized (pre-slicing) estimate, exposed for soft-output use and
  /// for tests that check the filter algebra directly.
  CVec equalize(const CVec& y) const { return w_ * y; }

 private:
  const Constellation* constellation_;
  LinearKind kind_;
  CMat w_;  // receive filter
  CMat h_;
};

}  // namespace flexcore::detect
