// Per-worker scratch arenas for the detection hot path.
//
// The task grids (detect/path_grid.h) and the buffer-reusing detector entry
// points (FlexCoreDetector/FcsdDetector::evaluate_path + reconstruct_winner,
// SicDetector/KBestDetector::detect_into) take a Workspace instead of
// allocating CVecs and symbol vectors per call: every buffer grows to its
// high-water mark on first use and is reused afterwards, so steady-state
// path tasks perform zero heap allocations.
//
// A WorkspaceBank holds one Workspace per ThreadPool worker; tasks index it
// with the worker id from ThreadPool::parallel_for_worker, which never runs
// two concurrent iterations under the same worker index — no locking.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/types.h"

namespace flexcore::detect {

/// Reusable scratch buffers for one worker.  Contents are unspecified
/// between uses; callers size what they need via resize/assign (cheap once
/// capacity has been reached).
struct Workspace {
  linalg::CVec ybar;         ///< rotated receive vector (Q^H y)
  linalg::CVec s;            ///< per-level constellation points of a walk
  std::vector<int> symbols;  ///< per-level symbol decisions (tree order)
  // Generic double/int pools for level-by-level detectors (K-best keeps its
  // survivor/candidate lists here instead of reallocating them per vector).
  std::vector<double> d0, d1;
  std::vector<int> i0, i1;
  std::vector<std::size_t> idx;
};

/// One Workspace per pool worker.
class WorkspaceBank {
 public:
  WorkspaceBank() = default;
  explicit WorkspaceBank(std::size_t workers) : ws_(workers) {}

  /// Grows to at least `workers` entries (never shrinks: workspaces keep
  /// their high-water-mark buffers across jobs).
  void ensure(std::size_t workers) {
    if (ws_.size() < workers) ws_.resize(workers);
  }

  Workspace& at(std::size_t worker) { return ws_[worker]; }
  std::size_t size() const noexcept { return ws_.size(); }

 private:
  std::vector<Workspace> ws_;
};

}  // namespace flexcore::detect
