// Ordered successive interference cancellation (V-BLAST style ZF-SIC).
//
// Uses the Wübben sorted QR so the most reliable stream is detected first;
// each decision is cancelled before detecting the next stream.  The paper
// uses SIC as the single-path reference point in Fig. 12 ("essentially a
// single-path FlexCore").
#pragma once

#include <span>

#include "detect/detector.h"
#include "detect/workspace.h"
#include "linalg/qr.h"

namespace flexcore::detect {

class SicDetector : public Detector {
 public:
  explicit SicDetector(const Constellation& c) : constellation_(&c) {}

  void set_channel(const CMat& h, double noise_var) override;
  DetectionResult detect(const CVec& y) const override;

  /// Sequential loop like the base class, but threading ONE workspace
  /// through the whole batch so per-vector scratch is not reallocated.
  void detect_batch(std::span<const CVec> ys, BatchResult* out) const override;

  std::string name() const override { return "zf-sic"; }

  /// Writes ybar = Q^H y into `out` without allocating (out.size() == Nt).
  void rotate_into(const CVec& y, std::span<linalg::cplx> out) const;

  /// Buffer-reusing core of detect(): rotation and per-level scratch live
  /// in `ws`; only the result's symbol vector is (re)allocated.
  void detect_into(const CVec& y, Workspace& ws, DetectionResult* res) const;

 private:
  const Constellation* constellation_;
  linalg::QrResult qr_;
};

}  // namespace flexcore::detect
