// Ordered successive interference cancellation (V-BLAST style ZF-SIC).
//
// Uses the Wübben sorted QR so the most reliable stream is detected first;
// each decision is cancelled before detecting the next stream.  The paper
// uses SIC as the single-path reference point in Fig. 12 ("essentially a
// single-path FlexCore").
#pragma once

#include "detect/detector.h"
#include "linalg/qr.h"

namespace flexcore::detect {

class SicDetector : public Detector {
 public:
  explicit SicDetector(const Constellation& c) : constellation_(&c) {}

  void set_channel(const CMat& h, double noise_var) override;
  DetectionResult detect(const CVec& y) const override;
  std::string name() const override { return "zf-sic"; }

 private:
  const Constellation* constellation_;
  linalg::QrResult qr_;
};

}  // namespace flexcore::detect
