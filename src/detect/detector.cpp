#include "detect/detector.h"

#include <chrono>

namespace flexcore::detect {

void Detector::set_thread_pool(parallel::ThreadPool* /*pool*/) {}

void Detector::detect_batch(std::span<const CVec> ys, BatchResult* out) const {
  out->results.clear();
  out->results.reserve(ys.size());
  out->stats = DetectionStats{};
  out->sic_fallbacks = 0;
  out->tasks = ys.size();

  const auto t0 = std::chrono::steady_clock::now();
  for (const CVec& y : ys) {
    out->results.push_back(detect(y));
    out->stats += out->results.back().stats;
  }
  out->elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

}  // namespace flexcore::detect
