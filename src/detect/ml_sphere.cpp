#include "detect/ml_sphere.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace flexcore::detect {

void MlSphereDecoder::set_channel(const CMat& h, double /*noise_var*/) {
  qr_ = opt_.use_sorted_qr ? linalg::sorted_qr_wubben(h) : linalg::qr_mgs(h);
  const std::size_t nt = qr_.R.cols();
  const int q = constellation_->order();
  rx_.assign(nt, CVec(static_cast<std::size_t>(q)));
  for (std::size_t i = 0; i < nt; ++i) {
    for (int x = 0; x < q; ++x) {
      rx_[i][static_cast<std::size_t>(x)] = qr_.R(i, i) * constellation_->point(x);
    }
  }
}

struct MlSphereDecoder::SearchState {
  const CMat* r;
  CVec ybar;
  std::size_t nt;
  int q;

  std::vector<int> current;        // symbol index per level
  std::vector<int> best;           // best leaf found
  double best_metric;
  DetectionStats stats;
  std::uint64_t max_nodes;
  bool truncated = false;

  // Scratch reused across node expansions (one slot per level to survive
  // the recursion).
  std::vector<std::vector<int>> order;      // per-level child index sort
  std::vector<std::vector<double>> dist;    // per-level child distances
};

void MlSphereDecoder::search(SearchState& st, std::size_t level,
                             double ped) const {
  if (st.max_nodes && st.stats.nodes_visited >= st.max_nodes) {
    st.truncated = true;
    return;
  }
  ++st.stats.nodes_visited;
  const std::size_t i = level;

  // Interference-cancelled observation for this level.
  cplx b = st.ybar[i];
  for (std::size_t j = i + 1; j < st.nt; ++j) {
    b -= (*st.r)(i, j) * constellation_->point(st.current[j]);
  }
  st.stats.real_mults += 4 * (st.nt - i - 1);
  st.stats.flops += 8 * (st.nt - i - 1);

  // Distances to all children using the precomputed R(i,i)*x table, then
  // Schnorr-Euchner order = ascending distance.
  auto& dist = st.dist[i];
  auto& order = st.order[i];
  const CVec& rx = rx_[i];
  for (int x = 0; x < st.q; ++x) {
    dist[static_cast<std::size_t>(x)] = linalg::abs2(b - rx[static_cast<std::size_t>(x)]);
  }
  st.stats.real_mults += 2 * static_cast<std::uint64_t>(st.q);
  st.stats.flops += 5 * static_cast<std::uint64_t>(st.q);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int bdx) {
    return dist[static_cast<std::size_t>(a)] < dist[static_cast<std::size_t>(bdx)];
  });

  for (int x : order) {
    const double child = ped + dist[static_cast<std::size_t>(x)];
    if (child >= st.best_metric) break;  // sorted: all later children prune too
    st.current[i] = x;
    if (i == 0) {
      st.best_metric = child;
      st.best = st.current;
    } else {
      search(st, i - 1, child);
      if (st.truncated) return;
    }
  }
}

DetectionResult MlSphereDecoder::detect(const CVec& y) const {
  const std::size_t nt = qr_.R.cols();
  SearchState st;
  st.r = &qr_.R;
  st.ybar = qr_.Q.hermitian() * y;
  st.nt = nt;
  st.q = constellation_->order();
  st.current.assign(nt, 0);
  st.best.assign(nt, 0);
  st.best_metric = std::numeric_limits<double>::infinity();
  st.max_nodes = opt_.max_nodes;
  st.order.assign(nt, std::vector<int>(static_cast<std::size_t>(st.q)));
  st.dist.assign(nt, std::vector<double>(static_cast<std::size_t>(st.q)));

  search(st, nt - 1, 0.0);

  DetectionResult res;
  res.symbols = linalg::unpermute(st.best, qr_.perm);
  res.metric = st.best_metric;
  res.stats = st.stats;
  res.stats.paths_evaluated = 1;
  return res;
}

}  // namespace flexcore::detect
