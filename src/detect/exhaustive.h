// Brute-force maximum-likelihood detection (reference oracle for tests).
//
// Enumerates every one of the |Q|^Nt hypotheses.  Only usable for tiny
// problems; the test suite uses it to certify that MlSphereDecoder, FCSD
// with L = Nt, and FlexCore with all paths selected are exactly ML.
#pragma once

#include "detect/detector.h"

namespace flexcore::detect {

/// Returns the exact ML solution argmin_s ||y - H s||^2 by exhaustive
/// search, with the winning metric.  Throws std::invalid_argument when the
/// search space exceeds `max_hypotheses` (guard against accidental blowup).
DetectionResult exhaustive_ml(const Constellation& c, const CMat& h,
                              const CVec& y,
                              std::uint64_t max_hypotheses = 1u << 22);

}  // namespace flexcore::detect
