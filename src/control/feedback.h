// Per-cell closed-loop control: observables in, detector specs out.
//
// A FeedbackLoop is the control plane of ONE cell.  Once per frame the
// serving layer feeds it an Observation — the estimated SNR from channel
// sounding (channel::estimated_snr_db), the post-detection symbol-error
// feedback from the link, and the cell's share of the runtime admission
// queue — and the loop answers with at most one Decision: a registry
// detector spec to apply at the next frame boundary
// (Runtime::reconfigure keeps the swap FIFO-safe).
//
// The loop composes three controllers, all deterministic in the
// observation sequence:
//   * SNR tracking — an EWMA of the SNR estimates feeds PathPolicy's
//     model inversion; hysteresis_db plus min_hold_frames stop the spec
//     from thrashing inside a coherence interval;
//   * error feedback (integral action) — when the measured symbol-error
//     rate over error_window frames misses the target, an SNR backoff
//     accumulates (the model was too optimistic for this channel), which
//     re-solves to more paths; sustained clean windows bleed it off;
//   * load shedding — sustained queue pressure degrades the budget by
//     halving the path count per step; past max_degrade_steps the ladder
//     sheds precision — first the ":fp32" kernel tier (a cheaper grid at
//     full path coverage), then the ":i16" quantized tier (int16 block
//     kernels with LUT-compiled slicing, the cheapest grid that still
//     searches every path) — and only then swaps the detector family to
//     the linear-complexity degrade_detector (graceful degradation
//     instead of dropped frames); sustained slack restores one step at a
//     time.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "control/path_policy.h"
#include "modulation/constellation.h"

namespace flexcore::control {

struct ControlConfig {
  PathPolicyConfig policy;
  /// Detector family realizing the solved path count ("flexcore",
  /// "a-flexcore" or "fcsd"; see path_spec).
  std::string path_family = "flexcore";

  /// EWMA weight of the newest SNR estimate (1 = no smoothing).
  double snr_alpha = 0.5;
  /// The smoothed effective SNR must move this far from the last solved
  /// point before the policy re-solves.
  double hysteresis_db = 1.0;
  /// Minimum frames between emitted SNR/error-driven spec changes — the
  /// coherence-boundary rule: reconfigure at most once per interval.
  std::size_t min_hold_frames = 4;

  /// Symbol-error feedback: evaluated every error_window frames.  A window
  /// SER above target_error grows the SNR backoff by error_backoff_db (up
  /// to max_backoff_db); a window below target_error / 4 shrinks it.
  std::size_t error_window = 8;
  double error_backoff_db = 1.0;
  double max_backoff_db = 6.0;

  /// Queue occupancy (depth / capacity) at or above load_high counts as
  /// pressure, at or below load_low as slack; in between both streaks
  /// reset.  degrade_after consecutive pressure frames cost one degrade
  /// step (immediately — load responses skip the SNR hold), restore_after
  /// slack frames give one back.
  double load_high = 0.75;
  double load_low = 0.25;
  std::size_t degrade_after = 3;
  std::size_t restore_after = 8;
  /// Halvings of the path budget before the terminal ladder rungs.  With
  /// shed_precision (default), degrade step max_degrade_steps + 1 drops
  /// the compute tier to fp32 (same spec + ":fp32" — the block kernels run
  /// single precision, roughly halving grid cost without giving up the
  /// path search), step max_degrade_steps + 2 drops it further to the
  /// int16 quantized tier (same spec + ":i16" — fixed-point block kernels,
  /// SER within detect::kI16SerTolerance of fp64), and step
  /// max_degrade_steps + 3 is the family swap to degrade_detector.
  /// Without it, step max_degrade_steps + 1 swaps directly.
  std::size_t max_degrade_steps = 3;
  /// Insert the fp32 and i16 precision rungs between the last halving and
  /// the family swap.
  bool shed_precision = true;
  std::string degrade_detector = "zf-sic";
};

/// One frame's observables.  All fields optional in spirit: NaN SNR means
/// no estimate this frame, symbols == 0 means no error feedback,
/// queue_capacity == 0 means no load signal.
struct Observation {
  double snr_db_estimate = std::numeric_limits<double>::quiet_NaN();
  std::size_t symbols = 0;        ///< symbols detected this frame
  std::size_t symbol_errors = 0;  ///< of which wrong (CRC / pilot feedback)
  std::size_t queue_depth = 0;    ///< runtime admission queue, this cell
  std::size_t queue_capacity = 0;
};

/// One emitted reconfiguration.
struct Decision {
  std::size_t frame_index = 0;  ///< observation index that triggered it
  std::string detector;         ///< registry spec to apply
  std::size_t paths = 0;        ///< solved path budget (post-degrade)
  double snr_db = 0.0;          ///< effective SNR the solve used
  std::size_t degrade_step = 0;
  const char* reason = "";      ///< "init"|"snr"|"error"|"load-degrade"|
                                ///< "load-restore"
};

class FeedbackLoop {
 public:
  /// `nt` is the cell's user count (tree depth of the model).  The
  /// constellation must outlive the loop.
  FeedbackLoop(const modulation::Constellation& c, std::size_t nt,
               ControlConfig cfg);

  /// Feeds one frame's observables; returns the spec change to apply at
  /// the next frame boundary, if any.  Deterministic: two loops fed the
  /// same observation sequence emit identical decision logs.
  std::optional<Decision> observe(const Observation& obs);

  std::size_t frames_observed() const noexcept { return frame_; }
  /// Smoothed SNR estimate (NaN until the first finite observation).
  double smoothed_snr_db() const noexcept { return snr_smooth_; }
  /// Accumulated error-feedback SNR penalty in dB.
  double error_backoff_db() const noexcept { return backoff_db_; }
  std::size_t degrade_step() const noexcept { return degrade_step_; }
  /// Last emitted decision (nullopt before the first).
  const std::optional<Decision>& current() const noexcept { return current_; }
  /// Full decision log, in emission order.
  const std::vector<Decision>& decisions() const noexcept {
    return decisions_;
  }
  const ControlConfig& config() const noexcept { return cfg_; }

 private:
  /// Solves the current spec from the smoothed state; emits iff it
  /// differs from the live spec.
  std::optional<Decision> emit(const char* reason);

  /// Highest degrade step before the terminal family swap: the halvings
  /// plus the fp32 and i16 rungs when enabled.  Shared by observe()
  /// (step-counter bound) and emit() (spec selection) so the ladder shape
  /// cannot drift.
  std::size_t ladder_top() const noexcept {
    return cfg_.max_degrade_steps + (cfg_.shed_precision ? 2 : 0);
  }

  const modulation::Constellation* c_;
  std::size_t nt_;
  ControlConfig cfg_;

  std::size_t frame_ = 0;
  double snr_smooth_ = std::numeric_limits<double>::quiet_NaN();
  double solved_snr_db_ = std::numeric_limits<double>::quiet_NaN();
  double backoff_db_ = 0.0;
  std::size_t window_symbols_ = 0;
  std::size_t window_errors_ = 0;
  std::size_t window_frames_ = 0;
  std::size_t high_run_ = 0;
  std::size_t low_run_ = 0;
  std::size_t degrade_step_ = 0;
  std::size_t last_emit_frame_ = 0;
  /// Set when the error integral moved the backoff: a re-solve is owed as
  /// soon as the hold window opens, even if the SNR itself sat still.
  const char* resolve_reason_ = nullptr;
  std::optional<Decision> current_;
  std::vector<Decision> decisions_;
};

}  // namespace flexcore::control
