// Path budgeting by inverting FlexCore's probability model (Fig. 14).
//
// Pre-processing ranks tree paths by Pc(p) = prod_l Pl(p(l)) with Pl
// geometric in the closeness rank (Appendix Eq. 11; the fig14 bench
// validates the model against simulation).  The cumulative Pc of the N
// best paths is the model probability that the transmitted vector lies on
// an evaluated path, so 1 - pc_sum(N) is the model's residual detection
// error.  PathPolicy runs the same best-first search the detector's
// pre-processing runs, but over a *nominal* per-level error probability
// derived from an SNR estimate alone — the control plane decides the next
// coherence interval's path budget before that interval's channels exist —
// and stops as soon as coverage reaches 1 - target_error: the smallest
// path count meeting the target at that SNR.
//
//   control::PathPolicyConfig pcfg;
//   pcfg.target_error = 1e-2;
//   pcfg.max_paths = 128;                       // the cell's PE budget
//   control::PathDecision d =
//       control::solve_path_count(qam, nt, snr_db, pcfg);
//   // d.paths = minimum N with model coverage >= 0.99 (clamped)
#pragma once

#include <cstddef>
#include <string>

#include "modulation/constellation.h"

namespace flexcore::control {

struct PathPolicyConfig {
  /// Residual model error the path set must stay under: the solver picks
  /// the smallest N with pc_sum(N) >= 1 - target_error.
  double target_error = 1e-2;
  /// Clamp range for the solved count.  max_paths is the cell's compute
  /// budget (its PE pool share); when even max_paths misses the target the
  /// decision reports feasible = false and returns max_paths.
  std::size_t min_paths = 1;
  std::size_t max_paths = 256;
  /// Safety margin subtracted from the SNR estimate before solving —
  /// absorbs estimator noise and the gap between the nominal flat-gain
  /// model and real per-level R diagonals.
  double snr_backoff_db = 0.0;
};

/// One solver verdict.
struct PathDecision {
  std::size_t paths = 0;  ///< smallest count meeting the target (clamped)
  double coverage = 0.0;  ///< model pc_sum of those paths
  double pe = 0.0;        ///< nominal per-level Pe the solve used
  bool feasible = false;  ///< coverage reached 1 - target within max_paths
};

/// Nominal per-level error probability at `snr_db`: the exact AWGN SER of
/// the constellation at unit gain (the kExactSer calibration Fig. 14
/// validates), clamped away from 0/1 for numeric sanity.
double nominal_level_pe(const modulation::Constellation& c, double snr_db);

/// Minimum path count meeting cfg.target_error for an Nt-user cell at the
/// estimated SNR.  Deterministic: same inputs, same decision.
PathDecision solve_path_count(const modulation::Constellation& c,
                              std::size_t nt, double snr_db,
                              const PathPolicyConfig& cfg);

/// Model coverage pc_sum of the best `paths` paths at `snr_db` — the
/// forward model, for benches/tests checking minimality of the solve.
double model_coverage(const modulation::Constellation& c, std::size_t nt,
                      double snr_db, std::size_t paths);

/// Registry spec realizing (at least) `paths` paths in the given detector
/// family: "flexcore" maps 1:1 ("flexcore-<N>"); "fcsd" can only realize
/// |Q|^L paths, so the smallest sufficient L is chosen ("fcsd-L<L>",
/// capped at L = 2 — beyond that the FCSD path count dwarfs any budget).
/// Throws std::invalid_argument for other families.
std::string path_spec(const std::string& family,
                      const modulation::Constellation& c, std::size_t paths);

}  // namespace flexcore::control
