#include "control/feedback.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string_view>

#include "detect/path_kernels.h"
#include "obs/obs.h"

namespace flexcore::control {

FeedbackLoop::FeedbackLoop(const modulation::Constellation& c, std::size_t nt,
                           ControlConfig cfg)
    : c_(&c), nt_(nt), cfg_(std::move(cfg)) {
  if (nt_ == 0) {
    throw std::invalid_argument("FeedbackLoop: nt must be >= 1");
  }
  if (!(cfg_.snr_alpha > 0.0 && cfg_.snr_alpha <= 1.0)) {
    throw std::invalid_argument("FeedbackLoop: snr_alpha must be in (0, 1]");
  }
  if (cfg_.error_window == 0) {
    throw std::invalid_argument("FeedbackLoop: error_window must be >= 1");
  }
  // Fail at construction, not mid-flight: the degrade ladder must name a
  // realizable family and the solver config must be sane.
  path_spec(cfg_.path_family, *c_, 1);
  solve_path_count(*c_, nt_, 10.0, cfg_.policy);
}

std::optional<Decision> FeedbackLoop::observe(const Observation& obs) {
  ++frame_;

  // --- SNR tracking (EWMA) -------------------------------------------------
  if (std::isfinite(obs.snr_db_estimate)) {
    snr_smooth_ = std::isnan(snr_smooth_)
                      ? obs.snr_db_estimate
                      : cfg_.snr_alpha * obs.snr_db_estimate +
                            (1.0 - cfg_.snr_alpha) * snr_smooth_;
  }

  // --- symbol-error integral action ---------------------------------------
  window_symbols_ += obs.symbols;
  window_errors_ += obs.symbol_errors;
  if (++window_frames_ >= cfg_.error_window) {
    if (window_symbols_ > 0) {
      const double ser = static_cast<double>(window_errors_) /
                         static_cast<double>(window_symbols_);
      if (ser > cfg_.policy.target_error &&
          backoff_db_ < cfg_.max_backoff_db) {
        backoff_db_ = std::min(cfg_.max_backoff_db,
                               backoff_db_ + cfg_.error_backoff_db);
        resolve_reason_ = "error";
      } else if (ser < cfg_.policy.target_error / 4.0 && backoff_db_ > 0.0) {
        backoff_db_ = std::max(0.0, backoff_db_ - cfg_.error_backoff_db);
        resolve_reason_ = "error";
      }
    }
    window_symbols_ = window_errors_ = 0;
    window_frames_ = 0;
  }

  // --- load shedding -------------------------------------------------------
  int load_delta = 0;
  if (obs.queue_capacity > 0) {
    const double occupancy = static_cast<double>(obs.queue_depth) /
                             static_cast<double>(obs.queue_capacity);
    if (occupancy >= cfg_.load_high) {
      ++high_run_;
      low_run_ = 0;
    } else if (occupancy <= cfg_.load_low) {
      ++low_run_;
      high_run_ = 0;
    } else {
      high_run_ = low_run_ = 0;
    }
    if (high_run_ >= cfg_.degrade_after && degrade_step_ <= ladder_top()) {
      ++degrade_step_;
      high_run_ = 0;
      load_delta = 1;
    } else if (low_run_ >= cfg_.restore_after && degrade_step_ > 0) {
      --degrade_step_;
      low_run_ = 0;
      load_delta = -1;
    }
  }

  // --- decide --------------------------------------------------------------
  if (std::isnan(snr_smooth_)) return std::nullopt;  // nothing to solve yet
  if (!current_) return emit("init");
  // Load responses act immediately — backpressure cannot wait out a
  // coherence hold; the streak counters already debounce them.
  if (load_delta > 0) return emit("load-degrade");
  if (load_delta < 0) return emit("load-restore");
  if (frame_ - last_emit_frame_ < cfg_.min_hold_frames) return std::nullopt;
  const double eff = snr_smooth_ - backoff_db_;
  if (resolve_reason_ != nullptr) return emit(resolve_reason_);
  if (std::abs(eff - solved_snr_db_) > cfg_.hysteresis_db) return emit("snr");
  return std::nullopt;
}

std::optional<Decision> FeedbackLoop::emit(const char* reason) {
  const double eff = snr_smooth_ - backoff_db_;
  const PathDecision pd = solve_path_count(*c_, nt_, eff, cfg_.policy);
  // Re-anchor hysteresis and the hold window at this solve even when the
  // spec comes out unchanged — that is what stops a slow drift from
  // re-solving every frame.
  solved_snr_db_ = eff;
  resolve_reason_ = nullptr;
  last_emit_frame_ = frame_;

  std::size_t paths = pd.paths;
  const std::size_t halvings =
      std::min(degrade_step_, cfg_.max_degrade_steps);
  for (std::size_t s = 0; s < halvings; ++s) {
    paths = std::max(cfg_.policy.min_paths, paths / 2);
  }
  // Terminal rungs past the halvings: fp32 then i16 precision drops (when
  // enabled), then the family swap.
  std::string spec;
  if (degrade_step_ > ladder_top()) {
    spec = cfg_.degrade_detector;
  } else {
    spec = path_spec(cfg_.path_family, *c_, paths);
    if (cfg_.shed_precision && degrade_step_ == cfg_.max_degrade_steps + 1) {
      spec += detect::precision_suffix(detect::Precision::kFloat32);
    } else if (cfg_.shed_precision &&
               degrade_step_ == cfg_.max_degrade_steps + 2) {
      spec += detect::precision_suffix(detect::Precision::kInt16);
    }
  }
  if (current_ && current_->detector == spec) return std::nullopt;

  Decision d;
  d.frame_index = frame_ - 1;
  d.detector = spec;
  d.paths = paths;
  d.snr_db = eff;
  d.degrade_step = degrade_step_;
  d.reason = reason;
  current_ = d;
  decisions_.push_back(d);
  obs::counter_add(obs::Counter::kControlDecisions);
  if (d.reason == std::string_view("load-degrade")) {
    // degrade_step_ was just incremented: the first shed lands on rung 0.
    obs::shed_ladder_rung(degrade_step_ - 1);
  }
  if (obs::tracing_enabled()) {
    // Control decisions are rare and load-bearing: mark every one as an
    // instant event regardless of frame sampling, on the caller's track.
    obs::TraceCtx ctx;
    ctx.id = frame_;
    ctx.decided = true;
    ctx.sampled = true;
    obs::record_instant(obs::Stage::kControl, obs::now_ns(), ctx,
                        static_cast<std::uint32_t>(
                            obs::control_reason_from(reason)));
  }
  return d;
}

}  // namespace flexcore::control
