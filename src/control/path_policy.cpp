#include "control/path_policy.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "channel/channel.h"
#include "core/preprocessing.h"
#include "modulation/error_rates.h"

namespace flexcore::control {

double nominal_level_pe(const modulation::Constellation& c, double snr_db) {
  const double noise_var = channel::noise_var_for_snr_db(snr_db);
  const double pe = modulation::level_error_probability(
      modulation::PeModel::kExactSer, c, 1.0, noise_var);
  return std::clamp(pe, 1e-12, 1.0 - 1e-12);
}

namespace {

core::PreprocessingResult run_model(const modulation::Constellation& c,
                                    std::size_t nt, double snr_db,
                                    std::size_t num_paths,
                                    double stop_threshold) {
  if (nt == 0) {
    throw std::invalid_argument("control: nt must be >= 1");
  }
  const std::vector<double> pe(nt, nominal_level_pe(c, snr_db));
  core::PreprocessingConfig pcfg;
  pcfg.num_paths = num_paths;
  pcfg.stop_threshold = stop_threshold;
  // An uncapped candidate list keeps the frontier exactly optimal, so the
  // solved count is the true model minimum (the budget is tiny next to a
  // detector's per-channel run; determinism matters more than the memory).
  pcfg.candidate_list_cap = num_paths + nt;
  return core::find_most_promising_paths(pe, c.order(), pcfg);
}

}  // namespace

PathDecision solve_path_count(const modulation::Constellation& c,
                              std::size_t nt, double snr_db,
                              const PathPolicyConfig& cfg) {
  if (cfg.min_paths == 0 || cfg.max_paths < cfg.min_paths) {
    throw std::invalid_argument(
        "solve_path_count: need 1 <= min_paths <= max_paths");
  }
  if (!(cfg.target_error > 0.0 && cfg.target_error < 1.0)) {
    throw std::invalid_argument(
        "solve_path_count: target_error must be in (0, 1)");
  }
  const double snr_eff = snr_db - cfg.snr_backoff_db;
  const double coverage_goal = 1.0 - cfg.target_error;
  const core::PreprocessingResult model =
      run_model(c, nt, snr_eff, cfg.max_paths, coverage_goal);

  PathDecision d;
  d.pe = model.pe.front();
  d.coverage = model.pc_sum;
  d.feasible = model.pc_sum >= coverage_goal;
  d.paths = std::clamp(model.paths.size(), cfg.min_paths, cfg.max_paths);
  return d;
}

double model_coverage(const modulation::Constellation& c, std::size_t nt,
                      double snr_db, std::size_t paths) {
  if (paths == 0) return 0.0;
  // stop_threshold 2.0: never stop early (total model mass is < 1).
  return run_model(c, nt, snr_db, paths, 2.0).pc_sum;
}

std::string path_spec(const std::string& family,
                      const modulation::Constellation& c, std::size_t paths) {
  if (paths == 0) {
    throw std::invalid_argument("path_spec: paths must be >= 1");
  }
  if (family == "flexcore" || family == "a-flexcore") {
    return family + "-" + std::to_string(paths);
  }
  if (family == "fcsd") {
    const std::size_t q = static_cast<std::size_t>(c.order());
    std::size_t realized = q;
    int level = 1;
    while (realized < paths && level < 2) {
      realized *= q;
      ++level;
    }
    return "fcsd-L" + std::to_string(level);
  }
  throw std::invalid_argument("path_spec: unsupported family \"" + family +
                              "\" (flexcore, a-flexcore, fcsd)");
}

}  // namespace flexcore::control
