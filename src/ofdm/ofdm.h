// 802.11-style OFDM numerology and rate accounting.
//
// The paper's testbed: 20 MHz channels, 64 subcarriers of which 48 carry
// payload, 4 us OFDM symbols, rate-1/2 convolutional coding (§5.1).  These
// constants convert detector decisions into the network-throughput numbers
// plotted in Figs. 9 and 10.
#pragma once

#include <cstddef>

namespace flexcore::ofdm {

struct OfdmConfig {
  std::size_t num_subcarriers = 64;   ///< FFT size
  std::size_t data_subcarriers = 48;  ///< payload-bearing subcarriers
  double symbol_duration_us = 4.0;    ///< OFDM symbol duration (incl. GI)
  double code_rate = 0.5;             ///< FEC rate
};

/// Received MIMO vectors arriving per second at the AP (one per data
/// subcarrier per OFDM symbol) — the arrival rate a detector must sustain
/// (used by the Table 1 reproduction).
inline double vectors_per_second(const OfdmConfig& c) {
  return static_cast<double>(c.data_subcarriers) / (c.symbol_duration_us * 1e-6);
}

/// PHY information rate of one user in Mbit/s (after FEC).
inline double per_user_rate_mbps(const OfdmConfig& c, int bits_per_symbol) {
  return static_cast<double>(c.data_subcarriers) * bits_per_symbol *
         c.code_rate / c.symbol_duration_us;
}

/// Network (sum) throughput in Mbit/s given each user's packet success rate.
/// throughput = sum_u rate * (1 - PER_u).
double network_throughput_mbps(const OfdmConfig& c, int bits_per_symbol,
                               const double* per_user_per, std::size_t nt);

/// Coded bits per user per OFDM symbol (the interleaver block size).
inline std::size_t coded_bits_per_ofdm_symbol(const OfdmConfig& c,
                                              int bits_per_symbol) {
  return c.data_subcarriers * static_cast<std::size_t>(bits_per_symbol);
}

/// Rounds a requested per-user info-bit count up so that the rate-1/2 coded
/// stream (including the 6 tail bits) fills a whole number of OFDM symbols.
std::size_t padded_info_bits(std::size_t requested, const OfdmConfig& c,
                             int bits_per_symbol);

}  // namespace flexcore::ofdm
