#include "ofdm/ofdm.h"

namespace flexcore::ofdm {

double network_throughput_mbps(const OfdmConfig& c, int bits_per_symbol,
                               const double* per_user_per, std::size_t nt) {
  const double rate = per_user_rate_mbps(c, bits_per_symbol);
  double sum = 0.0;
  for (std::size_t u = 0; u < nt; ++u) {
    sum += rate * (1.0 - per_user_per[u]);
  }
  return sum;
}

std::size_t padded_info_bits(std::size_t requested, const OfdmConfig& c,
                             int bits_per_symbol) {
  const std::size_t ncbps = coded_bits_per_ofdm_symbol(c, bits_per_symbol);
  // coded = 2 * (info + 6) must be a multiple of ncbps.
  const std::size_t coded_min = 2 * (requested + 6);
  const std::size_t blocks = (coded_min + ncbps - 1) / ncbps;
  return blocks * ncbps / 2 - 6;
}

}  // namespace flexcore::ofdm
