#include "channel/channel.h"

#include <cmath>
#include <stdexcept>

#include "linalg/solve.h"

namespace flexcore::channel {

CMat rayleigh_iid(std::size_t nr, std::size_t nt, Rng& rng) {
  CMat h(nr, nt);
  for (std::size_t r = 0; r < nr; ++r)
    for (std::size_t c = 0; c < nt; ++c) h(r, c) = rng.cgaussian(1.0);
  return h;
}

CMat exp_correlation(std::size_t n, double rho) {
  if (rho < 0.0 || rho >= 1.0) {
    throw std::invalid_argument("exp_correlation: need 0 <= rho < 1");
  }
  CMat r(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      r(i, j) = cplx{std::pow(rho, std::abs(static_cast<double>(i) -
                                            static_cast<double>(j))),
                     0.0};
    }
  }
  return r;
}

CMat kronecker_channel(std::size_t nr, std::size_t nt, double rx_rho,
                       const std::vector<double>& user_gains, Rng& rng) {
  if (user_gains.size() != nt) {
    throw std::invalid_argument("kronecker_channel: gains size != Nt");
  }
  CMat hw = rayleigh_iid(nr, nt, rng);
  CMat h = hw;
  if (rx_rho > 0.0) {
    // Rr^(1/2) via Cholesky: Rr = L L^H, so L * Hw has receive covariance Rr.
    const CMat l = linalg::cholesky(exp_correlation(nr, rx_rho));
    h = l * hw;
  }
  for (std::size_t c = 0; c < nt; ++c) {
    const double g = std::sqrt(user_gains[c]);
    for (std::size_t r = 0; r < nr; ++r) h(r, c) *= g;
  }
  return h;
}

std::vector<double> bounded_user_gains(std::size_t nt, double spread_db, Rng& rng) {
  std::vector<double> g(nt);
  double mean = 0.0;
  for (std::size_t i = 0; i < nt; ++i) {
    const double db = rng.uniform(-spread_db / 2.0, spread_db / 2.0);
    g[i] = std::pow(10.0, db / 10.0);
    mean += g[i];
  }
  mean /= static_cast<double>(nt);
  for (double& v : g) v /= mean;  // unit mean power so SNR calibration holds
  return g;
}

CVec awgn(std::size_t n, double noise_var, Rng& rng) {
  CVec v(n);
  for (auto& z : v) z = rng.cgaussian(noise_var);
  return v;
}

double noise_var_for_snr_db(double snr_db, double es) {
  const double snr = std::pow(10.0, snr_db / 10.0);
  return es / snr;
}

double snr_db_for_noise_var(double noise_var, double es) {
  return 10.0 * std::log10(es / noise_var);
}

CVec transmit(const CMat& h, const CVec& s, double noise_var, Rng& rng) {
  CVec y = h * s;
  if (noise_var > 0.0) {
    for (auto& z : y) z += rng.cgaussian(noise_var);
  }
  return y;
}

}  // namespace flexcore::channel
