// MIMO channel models and noise generation.
//
// The paper's evaluation uses over-the-air WARP v3 measurements (8x8) and
// trace-driven simulation from measured 1x12 traces (12x12).  We do not have
// those traces; per DESIGN.md §3 the stand-in is a Kronecker-correlated
// Rayleigh model with (a) exponential correlation across the co-located AP
// antennas and (b) a bounded per-user power spread, matching the paper's
// scheduling rule that "the individual SNRs of the scheduled users differ by
// no more than 3 dB".
#pragma once

#include <cstddef>
#include <vector>

#include "channel/rng.h"
#include "linalg/matrix.h"

namespace flexcore::channel {

using linalg::CMat;
using linalg::CVec;
using linalg::cplx;

/// Nr x Nt channel with i.i.d. CN(0,1) entries (classic Rayleigh fading).
CMat rayleigh_iid(std::size_t nr, std::size_t nt, Rng& rng);

/// Exponential correlation matrix R(i,j) = rho^|i-j|, 0 <= rho < 1.
CMat exp_correlation(std::size_t n, double rho);

/// Kronecker-model channel  H = Rr^(1/2) * Hw * diag(sqrt(gains)) with Hw
/// i.i.d. Rayleigh.  `rx_rho` sets receive-side (AP) antenna correlation;
/// `user_gains` are linear per-user power gains (transmit side is
/// uncorrelated because users are physically separate single-antenna nodes).
CMat kronecker_channel(std::size_t nr, std::size_t nt, double rx_rho,
                       const std::vector<double>& user_gains, Rng& rng);

/// Per-user linear power gains with a total spread of at most `spread_db`
/// (uniform in dB, then normalized to unit mean power).
std::vector<double> bounded_user_gains(std::size_t nt, double spread_db, Rng& rng);

/// Complex AWGN vector of length n with per-element variance `noise_var`.
CVec awgn(std::size_t n, double noise_var, Rng& rng);

/// Noise variance realizing a given *per-user* SNR (dB) — the paper's
/// convention ("the individual SNRs of the scheduled users differ by no
/// more than 3 dB").  With unit-energy symbols and unit-mean channel gains
/// each user contributes Es of power per receive antenna, so
///   SNR_user = Es / noise_var.
double noise_var_for_snr_db(double snr_db, double es = 1.0);

/// The per-user SNR (dB) corresponding to a noise variance.
double snr_db_for_noise_var(double noise_var, double es = 1.0);

/// y = H s + n for one channel use.
CVec transmit(const CMat& h, const CVec& s, double noise_var, Rng& rng);

}  // namespace flexcore::channel
