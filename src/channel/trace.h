// Synthetic channel trace generation (WARP testbed stand-in).
//
// The paper collects per-subcarrier MIMO channel matrices from a WARP v3
// indoor testbed (Fig. 8): 8x8 measured over the air and 12x12 assembled
// from measured 1x12 user traces.  We reproduce the *statistics* the
// evaluation depends on with a tapped-delay-line model:
//
//   * frequency selectivity: `num_taps` i.i.d. Rayleigh taps with an
//     exponential power-delay profile, transformed to the 64 OFDM
//     subcarriers by a DFT (indoor office delay spreads);
//   * receive-side antenna correlation: exponential model across the
//     co-located AP antennas (~6 cm spacing in the paper);
//   * per-user power control: gains with <= 3 dB spread, the paper's
//     scheduler rule.
//
// A ChannelTrace is one "channel realization" covering all subcarriers of
// one coherence interval; the simulation harness draws a fresh trace per
// packet (the paper's channels are "static over a packet transmission").
#pragma once

#include <cstdint>
#include <vector>

#include "channel/channel.h"

namespace flexcore::channel {

/// Per-subcarrier channel matrices for one coherence interval.
struct ChannelTrace {
  std::vector<CMat> per_subcarrier;  ///< size = num_subcarriers, each Nr x Nt
  std::vector<double> user_gains;    ///< linear per-user power gains
};

/// Configuration of the synthetic trace generator.
struct TraceConfig {
  std::size_t nr = 12;                 ///< AP antennas
  std::size_t nt = 12;                 ///< single-antenna users
  std::size_t num_subcarriers = 64;    ///< OFDM FFT size (48 carry data)
  std::size_t num_taps = 8;            ///< delay-line length
  double delay_spread_taps = 2.0;      ///< exponential PDP decay constant
  double rx_correlation = 0.4;         ///< AP antenna correlation coefficient
  double user_power_spread_db = 3.0;   ///< max scheduled-user SNR spread
};

/// Evolves a channel realization by one coherence step of a Gauss-Markov
/// (first-order autoregressive) process:  H' = rho * H + sqrt(1-rho^2) * W
/// with W fresh i.i.d. Rayleigh.  rho = 1 reproduces the static-channel
/// assumption; smaller rho models user mobility (§3.1's "dynamic channels"
/// discussion, where pre-processing must be re-run on fresh estimates).
/// Innovations are drawn independently per subcarrier — temporal
/// correlation is exact, innovation frequency-correlation is simplified
/// (documented in DESIGN.md).
ChannelTrace evolve_trace(const ChannelTrace& trace, double rho, Rng& rng);

/// Deterministic generator of ChannelTrace realizations.
class TraceGenerator {
 public:
  TraceGenerator(const TraceConfig& cfg, std::uint64_t seed);

  /// Draws the next channel realization.
  ChannelTrace next();

  const TraceConfig& config() const noexcept { return cfg_; }

 private:
  TraceConfig cfg_;
  Rng rng_;
  std::vector<double> tap_powers_;  // normalized exponential PDP
  CMat rx_chol_;                    // Cholesky factor of the rx correlation
};

}  // namespace flexcore::channel
