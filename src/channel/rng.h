// Deterministic random number generation for reproducible experiments.
#pragma once

#include <cstdint>
#include <random>

#include "linalg/types.h"

namespace flexcore::channel {

/// Thin, seedable wrapper around std::mt19937_64 producing the sample types
/// the simulator needs.  Every experiment harness owns its own Rng with an
/// explicit seed so results are bit-reproducible run to run.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  /// Standard real Gaussian N(0, 1).
  double gaussian() { return normal_(gen_); }

  /// Circularly-symmetric complex Gaussian CN(0, var).
  linalg::cplx cgaussian(double var = 1.0) {
    const double s = std::sqrt(var / 2.0);
    return {s * normal_(gen_), s * normal_(gen_)};
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return lo + (hi - lo) * unif_(gen_);
  }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(gen_);
  }

  /// Fair coin / random bit.
  std::uint8_t bit() { return static_cast<std::uint8_t>(gen_() & 1u); }

  std::mt19937_64& engine() noexcept { return gen_; }

 private:
  std::mt19937_64 gen_;
  std::normal_distribution<double> normal_{0.0, 1.0};
  std::uniform_real_distribution<double> unif_{0.0, 1.0};
};

}  // namespace flexcore::channel
