#include "channel/estimation.h"

#include <stdexcept>

namespace flexcore::channel {

ChannelEstimate estimate_channel(const CMat& h, double noise_var,
                                 std::size_t repeats, Rng& rng) {
  if (repeats == 0) {
    throw std::invalid_argument("estimate_channel: repeats must be >= 1");
  }
  const std::size_t nr = h.rows();
  const std::size_t nt = h.cols();

  ChannelEstimate est;
  est.h_hat = CMat(nr, nt);
  est.pilots_used = repeats * nt;

  // Accumulate received pilots; slot u of each round carries only user u,
  // so column u's LS estimate is the received vector divided by the pilot.
  double residual_power = 0.0;
  std::size_t residual_samples = 0;
  CMat sum(nr, nt);
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    for (std::size_t u = 0; u < nt; ++u) {
      CVec s(nt, cplx{0.0, 0.0});
      s[u] = kPilotSymbol;
      const CVec y = transmit(h, s, noise_var, rng);
      for (std::size_t r = 0; r < nr; ++r) {
        sum(r, u) += y[r] / kPilotSymbol;
      }
    }
  }
  for (std::size_t r = 0; r < nr; ++r) {
    for (std::size_t u = 0; u < nt; ++u) {
      est.h_hat(r, u) = sum(r, u) / static_cast<double>(repeats);
    }
  }

  // Noise estimate from residuals of a second sounding pass against the
  // just-computed estimate (keeps the estimator self-contained; with
  // repeats >= 2 one could reuse the first pass, but a dedicated pass
  // avoids the bias bookkeeping).
  for (std::size_t u = 0; u < nt; ++u) {
    CVec s(nt, cplx{0.0, 0.0});
    s[u] = kPilotSymbol;
    const CVec y = transmit(h, s, noise_var, rng);
    const CVec y_hat = est.h_hat * s;
    for (std::size_t r = 0; r < nr; ++r) {
      residual_power += linalg::abs2(y[r] - y_hat[r]);
      ++residual_samples;
    }
  }
  // Residual variance = noise_var * (1 + 1/repeats): the estimate itself
  // carries noise_var/repeats of error per entry.  Correct for it.
  const double raw = residual_power / static_cast<double>(residual_samples);
  est.noise_var_hat = raw / (1.0 + 1.0 / static_cast<double>(repeats));
  return est;
}

double estimation_mse(const CMat& h, const CMat& h_hat) {
  double mse = 0.0;
  for (std::size_t r = 0; r < h.rows(); ++r) {
    for (std::size_t c = 0; c < h.cols(); ++c) {
      mse += linalg::abs2(h(r, c) - h_hat(r, c));
    }
  }
  return mse / static_cast<double>(h.rows() * h.cols());
}

}  // namespace flexcore::channel
