#include "channel/estimation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flexcore::channel {

ChannelEstimate estimate_channel(const CMat& h, double noise_var,
                                 std::size_t repeats, Rng& rng) {
  if (repeats == 0) {
    throw std::invalid_argument("estimate_channel: repeats must be >= 1");
  }
  const std::size_t nr = h.rows();
  const std::size_t nt = h.cols();

  ChannelEstimate est;
  est.h_hat = CMat(nr, nt);
  est.pilots_used = repeats * nt;

  // Accumulate received pilots; slot u of each round carries only user u,
  // so column u's LS estimate is the received vector divided by the pilot.
  double residual_power = 0.0;
  std::size_t residual_samples = 0;
  CMat sum(nr, nt);
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    for (std::size_t u = 0; u < nt; ++u) {
      CVec s(nt, cplx{0.0, 0.0});
      s[u] = kPilotSymbol;
      const CVec y = transmit(h, s, noise_var, rng);
      for (std::size_t r = 0; r < nr; ++r) {
        sum(r, u) += y[r] / kPilotSymbol;
      }
    }
  }
  for (std::size_t r = 0; r < nr; ++r) {
    for (std::size_t u = 0; u < nt; ++u) {
      est.h_hat(r, u) = sum(r, u) / static_cast<double>(repeats);
    }
  }

  // Noise estimate from residuals of dedicated sounding passes against the
  // just-computed estimate (self-contained: reusing the first pass would
  // need extra bias bookkeeping).  `repeats` residual passes, so the noise
  // estimate's variance shrinks with the pilot budget like the channel
  // estimate's does — the SNR observable the control plane consumes
  // inherits the full 1/repeats averaging.
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    for (std::size_t u = 0; u < nt; ++u) {
      CVec s(nt, cplx{0.0, 0.0});
      s[u] = kPilotSymbol;
      const CVec y = transmit(h, s, noise_var, rng);
      const CVec y_hat = est.h_hat * s;
      for (std::size_t r = 0; r < nr; ++r) {
        residual_power += linalg::abs2(y[r] - y_hat[r]);
        ++residual_samples;
      }
    }
  }
  // Residual variance = noise_var * (1 + 1/repeats): the estimate itself
  // carries noise_var/repeats of error per entry.  Correct for it.
  const double raw = residual_power / static_cast<double>(residual_samples);
  est.noise_var_hat = raw / (1.0 + 1.0 / static_cast<double>(repeats));
  return est;
}

double estimated_snr_db(const ChannelEstimate& est) {
  const std::size_t nr = est.h_hat.rows();
  const std::size_t nt = est.h_hat.cols();
  if (nr == 0 || nt == 0) {
    throw std::invalid_argument("estimated_snr_db: empty estimate");
  }
  double fro2 = 0.0;
  for (std::size_t r = 0; r < nr; ++r) {
    for (std::size_t u = 0; u < nt; ++u) {
      fro2 += linalg::abs2(est.h_hat(r, u));
    }
  }
  // Each LS entry carries noise_var / repeats of estimation noise on top of
  // the true coefficient; subtract that known bias from the measured power.
  const std::size_t repeats = std::max<std::size_t>(1, est.pilots_used / nt);
  const double mean_entry_power = fro2 / static_cast<double>(nr * nt);
  const double signal_per_user =
      mean_entry_power - est.noise_var_hat / static_cast<double>(repeats);
  constexpr double kFloorDb = -30.0, kCeilDb = 60.0;
  if (!(est.noise_var_hat > 0.0)) return kCeilDb;  // noiseless sounding
  if (!(signal_per_user > 0.0)) return kFloorDb;   // bias ate the signal
  const double snr_db = 10.0 * std::log10(signal_per_user / est.noise_var_hat);
  return std::clamp(snr_db, kFloorDb, kCeilDb);
}

double estimation_mse(const CMat& h, const CMat& h_hat) {
  double mse = 0.0;
  for (std::size_t r = 0; r < h.rows(); ++r) {
    for (std::size_t c = 0; c < h.cols(); ++c) {
      mse += linalg::abs2(h(r, c) - h_hat(r, c));
    }
  }
  return mse / static_cast<double>(h.rows() * h.cols());
}

}  // namespace flexcore::channel
