#include "channel/trace.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "linalg/solve.h"

namespace flexcore::channel {

ChannelTrace evolve_trace(const ChannelTrace& trace, double rho, Rng& rng) {
  if (rho < 0.0 || rho > 1.0) {
    throw std::invalid_argument("evolve_trace: need 0 <= rho <= 1");
  }
  const double innov = std::sqrt(1.0 - rho * rho);
  ChannelTrace out;
  out.user_gains = trace.user_gains;
  out.per_subcarrier.reserve(trace.per_subcarrier.size());
  for (const CMat& h : trace.per_subcarrier) {
    CMat next(h.rows(), h.cols());
    for (std::size_t r = 0; r < h.rows(); ++r) {
      for (std::size_t c = 0; c < h.cols(); ++c) {
        // Innovation scaled by the user gain so per-entry power persists.
        const double g = std::sqrt(out.user_gains[c]);
        next(r, c) = rho * h(r, c) + innov * g * rng.cgaussian(1.0);
      }
    }
    out.per_subcarrier.push_back(std::move(next));
  }
  return out;
}

TraceGenerator::TraceGenerator(const TraceConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  // Exponential power-delay profile, normalized so each H entry has unit
  // average energy (keeps the SNR definition of channel.h valid).
  tap_powers_.resize(cfg_.num_taps);
  double total = 0.0;
  for (std::size_t k = 0; k < cfg_.num_taps; ++k) {
    tap_powers_[k] = std::exp(-static_cast<double>(k) / cfg_.delay_spread_taps);
    total += tap_powers_[k];
  }
  for (double& p : tap_powers_) p /= total;

  if (cfg_.rx_correlation > 0.0) {
    rx_chol_ = linalg::cholesky(exp_correlation(cfg_.nr, cfg_.rx_correlation));
  }
}

ChannelTrace TraceGenerator::next() {
  const std::size_t nsc = cfg_.num_subcarriers;
  ChannelTrace trace;
  trace.user_gains = bounded_user_gains(cfg_.nt, cfg_.user_power_spread_db, rng_);

  // Draw correlated tap matrices G_k, then transform to the frequency
  // domain: H(f) = sum_k G_k * exp(-j 2 pi f k / Nsc).
  std::vector<CMat> taps(cfg_.num_taps);
  for (std::size_t k = 0; k < cfg_.num_taps; ++k) {
    CMat g = rayleigh_iid(cfg_.nr, cfg_.nt, rng_);
    const double amp = std::sqrt(tap_powers_[k]);
    for (std::size_t r = 0; r < cfg_.nr; ++r)
      for (std::size_t c = 0; c < cfg_.nt; ++c) g(r, c) *= amp;
    if (cfg_.rx_correlation > 0.0) g = rx_chol_ * g;
    taps[k] = std::move(g);
  }

  trace.per_subcarrier.reserve(nsc);
  for (std::size_t f = 0; f < nsc; ++f) {
    CMat h(cfg_.nr, cfg_.nt);
    for (std::size_t k = 0; k < cfg_.num_taps; ++k) {
      const double phase = -2.0 * std::numbers::pi *
                           static_cast<double>(f) * static_cast<double>(k) /
                           static_cast<double>(nsc);
      const cplx w{std::cos(phase), std::sin(phase)};
      for (std::size_t r = 0; r < cfg_.nr; ++r)
        for (std::size_t c = 0; c < cfg_.nt; ++c) h(r, c) += w * taps[k](r, c);
    }
    // Per-user power control gains.
    for (std::size_t c = 0; c < cfg_.nt; ++c) {
      const double g = std::sqrt(trace.user_gains[c]);
      for (std::size_t r = 0; r < cfg_.nr; ++r) h(r, c) *= g;
    }
    trace.per_subcarrier.push_back(std::move(h));
  }
  return trace;
}

}  // namespace flexcore::channel
