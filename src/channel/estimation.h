// Pilot-based channel and noise estimation.
//
// The paper's over-the-air evaluation performs "all necessary estimation
// and synchronisation steps (e.g., channel estimation)" (§5.1), and §3.1
// notes FlexCore's pre-processing consumes exactly those channel estimates
// ("FlexCore will then leverage these estimates to recalculate the most
// promising paths").  This module provides the standard least-squares
// estimator the testbed flow implies:
//
//  * each user transmits `repeats` known pilot vectors in time-orthogonal
//    slots (user u alone in slot u of each repetition — the classic
//    sounding schedule for uplink MU-MIMO);
//  * H-hat columns are averaged LS estimates per user;
//  * the noise variance is estimated from the pilot residuals.
//
// The ablation bench `ablation_channel_estimation` measures how estimation
// error propagates into FlexCore's path choice and throughput.
#pragma once

#include <cstddef>

#include "channel/channel.h"

namespace flexcore::channel {

/// Result of sounding one subcarrier.
struct ChannelEstimate {
  CMat h_hat;             ///< estimated Nr x Nt channel
  double noise_var_hat;   ///< estimated per-antenna noise variance
  std::size_t pilots_used;
};

/// Known pilot amplitude (unit energy, fixed phase) transmitted by each
/// user during its sounding slot.
inline constexpr cplx kPilotSymbol{1.0, 0.0};

/// Sounds the channel `h` with `repeats` rounds of time-orthogonal unit
/// pilots per user and returns the LS estimate.  `noise_var` is the true
/// channel noise used to synthesize the received pilots; the estimator
/// does not see it (it reports its own noise_var_hat).
ChannelEstimate estimate_channel(const CMat& h, double noise_var,
                                 std::size_t repeats, Rng& rng);

/// Per-entry mean squared error between an estimate and the true channel
/// (the usual estimator quality figure, ~ noise_var / repeats for LS).
double estimation_mse(const CMat& h, const CMat& h_hat);

/// Average per-USER SNR implied by a channel estimate — the control
/// plane's primary observable (it has no access to the true H).  Per-user
/// signal power is the mean |h|^2 over the estimate's entries (unit-energy
/// symbols, so for the unit-variance channels of this repo it inverts
/// channel::noise_var_for_snr_db), with the LS estimation-noise bias
/// noise_var_hat / repeats removed per entry, over the estimated noise
/// variance.  Clamped to [-30, 60] dB so degenerate estimates
/// (noise_var_hat ~ 0, or bias exceeding the measured power) yield a sane
/// extreme instead of inf/NaN.
double estimated_snr_db(const ChannelEstimate& est);

}  // namespace flexcore::channel
