// Decentralized per-antenna-cluster preprocessing: partial QR + merge.
//
// Following "Decentralized Baseband Processing for Massive MU-MIMO
// Systems" (Li et al.) and the RaPro prototype, the B receive antennas are
// partitioned into C contiguous clusters.  Cluster c sees only its
// antenna-row submatrix H_c (a linalg::CMatView — no copy) and its slice
// y_c of each received vector, and compresses them locally:
//
//   H_c = Q_c R_c            (thin, rank-tolerant plain QR)
//   ybar_c = Q_c^H y_c       (k_c = min(rows_c, Nt) entries)
//
// The feedforward merge just STACKS the partials:
//
//   S = [R_1; ...; R_C]      (K x Nt, K = sum k_c <= B)
//   z = [ybar_1; ...; ybar_C]
//
// and hands (S, z) to the unchanged detection stack.  This is exact, not
// approximate: S^H S = sum R_c^H R_c = sum H_c^H H_c = H^H H and
// S^H z = H^H y, so every Gram-determined quantity — sorted-QR column
// orderings (Wübben, FCSD), the final R factor, the rotated ybar the tree
// search consumes, ZF/MMSE filters — is identical to the monolithic values
// in exact arithmetic, and within floating-point tolerance in practice
// (property-tested in tests/shard_test.cpp).  The noise statistics survive
// too: Q_c^H n_c stays white with the same per-entry variance.
//
// Why it scales: each cluster's QR is O(rows_c * Nt^2) on its own memory
// (and, in api::ShardedRuntime, its own thread pool / CPU set), and the
// detection-side preprocessing then factorizes the K x Nt stack instead of
// the B x Nt channel — for B >> C * Nt the serial part shrinks by B / K.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/qr.h"

namespace flexcore::shard {

/// One cluster's contiguous antenna-row range [begin, begin + count).
struct RowRange {
  std::size_t begin = 0;
  std::size_t count = 0;
};

/// Partitions `rows` antenna rows into at most `shards` contiguous,
/// balanced clusters (sizes differ by at most one, every cluster gets at
/// least one row — fewer clusters than requested when rows < shards).
/// Throws std::invalid_argument when shards == 0 or rows == 0.
std::vector<RowRange> plan_shards(std::size_t rows, std::size_t shards);

/// Rows cluster c contributes to the merged stack: its QR compresses to
/// Nt rows when it has at least Nt antennas, otherwise its rows pass
/// through unrotated.  Static in the plan — identical for every subcarrier
/// — so merged buffers have one shape per frame.
inline std::size_t compressed_rows(const RowRange& range, std::size_t nt) {
  return range.count < nt ? range.count : nt;
}

/// One cluster's local preprocessing output for one subcarrier channel.
struct PartialQr {
  /// Q_c of the thin rank-tolerant QR; EMPTY when the cluster passed its
  /// rows through uncompressed (fewer rows than Nt: identity rotation).
  linalg::CMat q;
  /// The cluster's contribution to the merged stack: R_c (Nt x Nt, upper
  /// triangular, possibly with zero rows when the submatrix was
  /// rank-deficient) when compressed, the raw H_c rows otherwise.
  linalg::CMat r;
};

/// Local preprocessing of one cluster's antenna-row submatrix.  Plain
/// (UNSORTED) QR on purpose: column ordering is a Gram-determined global
/// decision, and the merge preserves the Gram exactly, so the detection
/// stack re-derives the same ordering from the stack that it would have
/// derived from H — each detector family applies its own.
PartialQr compute_partial(linalg::CMatView h_rows);

/// ybar_c = Q_c^H y_c into `out` (compressed_rows entries); pass-through
/// clusters copy their slice.  `y_rows` is the cluster's row slice of the
/// full received vector.
void rotate_partial(const PartialQr& partial, std::span<const linalg::cplx> y_rows,
                    std::span<linalg::cplx> out);

/// Total merged rows K = sum over clusters of compressed_rows.
std::size_t merged_rows(std::span<const RowRange> plan, std::size_t nt);

/// Stacks the per-cluster R blocks into the merged channel S (K x Nt).
/// Partials must be ordered like the plan that produced them.
linalg::CMat stack_partials(std::span<const PartialQr> partials);

/// Convenience for tests and single-subcarrier callers: full partial-QR
/// pipeline over one channel + one received vector under `plan`, returning
/// the merged (S, z) pair.  api::ShardedRuntime runs the same three
/// primitives spread across per-shard thread pools instead.
struct MergedChannel {
  linalg::CMat s;    ///< stacked compressed channel, K x Nt
  linalg::CVec z;    ///< stacked rotated receive vector, K entries
};
MergedChannel merge_channel(linalg::CMatView h, std::span<const linalg::cplx> y,
                            std::span<const RowRange> plan);

}  // namespace flexcore::shard
