// Sharded baseband runtime: decentralized per-antenna-cluster
// preprocessing in front of the unchanged asynchronous detection runtime.
//
// A centralized large-MIMO receiver funnels all B antenna streams into one
// compute domain before detection — the interconnect/memory bottleneck the
// decentralized baseband processing literature (Li et al., RaPro) removes
// by splitting the array into C antenna clusters that preprocess locally
// and feedforward only compressed partials.  api::ShardedRuntime is that
// architecture on this CPU reproduction:
//
//     antennas [0..B) split into C contiguous clusters (shard::plan_shards)
//        |
//        v         per shard: OWN driver thread + OWN ThreadPool
//   +---------+   (optionally CPU-pinned)  — partial QR of its antenna
//   | shard 0 |----+   rows for EVERY subcarrier, local ybar rotation
//   | shard 1 |----+--> merged (S, z) per subcarrier  [stack, no barrier
//   |   ...   |----+    math — see shard/partial_qr.h: exact, not approx]
//   +---------+
//        |
//        v
//   api::Runtime (UNCHANGED): admission queue, per-cell FIFO, backpressure
//   policies, deadlines, dispatchers, the shared detection PE pool.
//
// The public surface mirrors api::Runtime (open_cell / submit / reconfigure
// / run_one / drain / stats) and every Runtime guarantee carries over:
// tickets behave identically, frames of one cell complete in FIFO order,
// QueuePolicy semantics are those of the inner runtime.  Two deliberate
// semantic points:
//
//  * submit() runs the DECENTRALIZED PREPROCESSING SYNCHRONOUSLY on the
//    shard fabric before enqueueing the merged job — that is the paper
//    architecture (the fronthaul hands the detector compressed partials,
//    not raw antennas), and it keeps the borrowed-span lifetime contract
//    trivially safe: the caller's channels/ys are released when submit
//    returns; the inner runtime only ever borrows the ShardedRuntime's own
//    merged buffers (recycled through a freelist when the ticket
//    completes).  An armed deadline_us is measured from THIS submit call:
//    the shard-stage wall time is deducted before the inner submit.
//  * With ONE effective shard (config shards == 1, or a single-antenna
//    frame) the shard stage is bypassed entirely and the caller's job is
//    forwarded verbatim — results are BIT-IDENTICAL to a monolithic
//    api::Runtime with the same RuntimeConfig (runtime_test's cross-check
//    corpus runs on both).  With C > 1 the merged job is mathematically
//    equivalent (same Gram ⇒ same orderings and filters) but not
//    bit-identical — rotations reorder floating-point sums.
//
// RuntimeStats::shards carries per-cluster counters (frames, partial QRs,
// antenna rows, busy seconds, pool pinning) on top of the inner runtime's
// snapshot; bench/fig18_sharded_runtime.cpp sweeps shards x cells against
// the monolithic runtime into BENCH_sharded.json.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "api/runtime.h"
#include "shard/partial_qr.h"

namespace flexcore::api {

/// Verdict of a ShardFaultProbe for one (shard, frame) prep attempt.
/// Chaos harnesses install a probe (fault::Injector::shard_probe) to
/// simulate cluster failures: `fail` makes the shard skip the prep and
/// report a fault (exercising the submit-side retry-then-bypass ladder),
/// `stall_us` sleeps the driver first (exercising the stall budget).
struct ShardFaultAction {
  bool fail = false;
  std::uint32_t stall_us = 0;
};

/// Called by each shard driver before it preprocesses a frame.  Invoked
/// concurrently from the C driver threads — must be thread-safe; `frame`
/// is the sharded-path frame sequence number (0-based, identical across
/// the shards of one frame).
using ShardFaultProbe =
    std::function<ShardFaultAction(std::size_t shard, std::uint64_t frame)>;

struct ShardedRuntimeConfig {
  /// Antenna clusters C.  Each gets a driver thread + private ThreadPool.
  /// A frame with fewer antenna rows than C uses one cluster per row;
  /// 1 = pure pass-through to the inner runtime (bit-identical).
  std::size_t shards = 2;
  /// Worker threads of each shard's pool (the caller-participates
  /// convention of parallel::ThreadPool: 1 = the driver thread alone).
  /// 0 = split the hardware threads evenly across shards (>= 1 each).
  std::size_t threads_per_shard = 0;
  /// Pin each shard's threads (driver + spawned workers) to their own CPU
  /// slice, shard s owning cpus [s*T, (s+1)*T) mod hardware_concurrency —
  /// the "each cluster owns its cores" deployment.  Best-effort (see
  /// parallel::PoolOptions); off by default.
  bool pin_shard_workers = false;
  /// Upper bound, in microseconds, submit() waits for the shard fabric
  /// before declaring the frame's fan-out stalled and bypassing it
  /// (merged-monolithic fallback — the ticket NEVER hangs on a dead
  /// cluster).  0 (default) waits forever — exactly the pre-fault-layer
  /// semantics.  With a nonzero budget the caller's job spans must stay
  /// valid for up to one budget window past submit (an abandoned driver
  /// may still be reading them while it winds down); harnesses that arm
  /// the budget keep their frames alive anyway.
  std::uint64_t shard_stall_budget_us = 0;
  /// The inner detection runtime (shared PE pool, dispatchers, admission
  /// queue, policy) — exactly api::Runtime's knobs.
  RuntimeConfig runtime;
};

/// Decentralized front-end + api::Runtime back-end.  Thread-safety matches
/// Runtime: submit/reconfigure/stats/drain from any thread; open_cell must
/// not race submit.
class ShardedRuntime {
 public:
  explicit ShardedRuntime(const ShardedRuntimeConfig& cfg = {});
  /// Joins the shard drivers after the inner runtime drained (frames in
  /// flight keep their merged buffers alive through ticket callbacks).
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  /// Opens a per-cell session on the inner runtime (same contract).
  Cell& open_cell(const CellConfig& cfg);

  /// Validates the job (api::validate_frame_job, at the call site), runs
  /// the per-cluster partial QR + rotation across the shard fabric, and
  /// submits the merged job to the inner runtime.  The caller's spans are
  /// NOT retained past the return — unlike Runtime::submit, the borrowed
  /// data may be freed as soon as this call comes back.  Admission
  /// behaviour (blocking, dropping, expiring) is the inner runtime's.
  FrameTicket submit(Cell& cell, const FrameJob& job,
                     std::uint64_t deadline_us = 0);

  /// Forwards to the inner runtime (control messages carry no antenna
  /// data — nothing to shard).
  FrameTicket reconfigure(Cell& cell, const CellReconfig& rc);

  /// Manual pump of the inner runtime's queue (poll mode; see Runtime).
  bool run_one();
  /// Blocks until the inner runtime is idle.
  void drain();

  /// Inner runtime snapshot plus per-shard counters (stats().shards).
  RuntimeStats stats() const;

  /// Clusters configured (the cap; thin frames may use fewer).
  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Resolved workers per shard pool (>= 1).
  std::size_t threads_per_shard() const noexcept { return threads_per_shard_; }

  /// Installs the per-(shard, frame) fault probe (chaos testing; see
  /// ShardFaultProbe).  Install BEFORE the first submit and never swap
  /// while frames are in flight — the drivers read it unlocked.
  void set_fault_probe(ShardFaultProbe probe) {
    fault_probe_ = std::move(probe);
  }

  Runtime& runtime() noexcept { return runtime_; }
  const ShardedRuntimeConfig& config() const noexcept { return cfg_; }

 private:
  /// One frame's merged buffers: per-subcarrier stacked channels S (K x Nt)
  /// and the stacked rotated vectors z, laid out like FrameJob::ys.  Owned
  /// by the freelist; kept alive while in flight by the ticket callback.
  struct MergedFrame {
    std::vector<linalg::CMat> channels;
    std::vector<linalg::CVec> zs;
  };

  /// One frame's shard-stage work order, shared by the C driver threads.
  struct PrepJob;

  /// One antenna cluster: driver thread + mailbox + private pool.
  struct Shard;

  std::shared_ptr<MergedFrame> acquire_merged(std::size_t nsc, std::size_t k,
                                              std::size_t nt,
                                              std::size_t n_vectors);
  void recycle_merged(std::shared_ptr<MergedFrame> m);
  void shard_loop(std::size_t shard_id);
  /// This shard's slice of one frame: partial QR + rotation for every
  /// subcarrier, fanned over the shard's own pool.  Returns false when any
  /// subcarrier's partial failed numerically (non-finite / degenerate
  /// channel rows) — exceptions never cross the pool boundary; the caller
  /// marks the attempt failed and the submit side retries or bypasses.
  bool run_prep(std::size_t shard_id, PrepJob& pj);

  ShardedRuntimeConfig cfg_;
  std::size_t threads_per_shard_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Chaos hook (empty in production).  Written only before frames flow.
  ShardFaultProbe fault_probe_;
  /// Sharded-path frame sequence handed to the probe (pass-throughs and
  /// reconfigures don't count).
  std::atomic<std::uint64_t> frame_seq_{0};
  /// Degradation counters folded into stats() (shard_retries /
  /// shard_bypasses on RuntimeStats).
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> bypasses_{0};

  mutable std::mutex freelist_mu_;
  std::vector<std::shared_ptr<MergedFrame>> freelist_;

  /// Submit-side shard-stage latency (fan-out -> merge wait), merged into
  /// stats().stage_latency[obs::Stage::kShardPartialQr].  Own mutex: the
  /// shard stage never touches the inner runtime's lock.
  mutable std::mutex shard_hist_mu_;
  LatencyHistogram shard_hist_;

  /// LAST member on purpose: destroyed FIRST, so its destructor's drain —
  /// which fires the ticket callbacks that recycle merged buffers into
  /// freelist_ — runs while the freelist (and the shards) still exist.
  Runtime runtime_;
};

}  // namespace flexcore::api
