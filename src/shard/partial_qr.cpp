#include "shard/partial_qr.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace flexcore::shard {

std::vector<RowRange> plan_shards(std::size_t rows, std::size_t shards) {
  if (rows == 0) throw std::invalid_argument("plan_shards: rows == 0");
  if (shards == 0) throw std::invalid_argument("plan_shards: shards == 0");
  const std::size_t c = std::min(rows, shards);
  const std::size_t base = rows / c;
  const std::size_t extra = rows % c;  // first `extra` clusters get one more
  std::vector<RowRange> plan(c);
  std::size_t begin = 0;
  for (std::size_t i = 0; i < c; ++i) {
    const std::size_t count = base + (i < extra ? 1 : 0);
    plan[i] = RowRange{begin, count};
    begin += count;
  }
  return plan;
}

PartialQr compute_partial(linalg::CMatView h_rows) {
  PartialQr out;
  if (h_rows.rows() < h_rows.cols()) {
    // Thin cluster: fewer antennas than streams — no compression possible,
    // rows pass through under the identity rotation.
    out.r = h_rows.materialize();
    return out;
  }
  // With exactly one cluster spanning all rows this IS qr_mgs on the full
  // channel (tolerant path is bit-identical for full-rank input), which is
  // what makes the C=1 partial bit-identity test meaningful.
  linalg::QrResult qr = linalg::qr_mgs_tolerant(h_rows);
  out.q = std::move(qr.Q);
  out.r = std::move(qr.R);
  return out;
}

void rotate_partial(const PartialQr& partial, std::span<const linalg::cplx> y_rows,
                    std::span<linalg::cplx> out) {
  if (partial.q.empty()) {
    // Pass-through cluster: ybar_c = y_c verbatim.
    assert(out.size() == y_rows.size());
    std::copy(y_rows.begin(), y_rows.end(), out.begin());
    return;
  }
  linalg::hermitian_mul_into(partial.q, y_rows, out);
}

std::size_t merged_rows(std::span<const RowRange> plan, std::size_t nt) {
  std::size_t k = 0;
  for (const RowRange& range : plan) k += compressed_rows(range, nt);
  return k;
}

linalg::CMat stack_partials(std::span<const PartialQr> partials) {
  std::size_t k = 0;
  std::size_t nt = 0;
  for (const PartialQr& p : partials) {
    k += p.r.rows();
    nt = p.r.cols();
  }
  linalg::CMat s(k, nt);
  std::size_t row = 0;
  for (const PartialQr& p : partials) {
    std::memcpy(s.data() + row * nt, p.r.data(),
                p.r.rows() * nt * sizeof(linalg::cplx));
    row += p.r.rows();
  }
  return s;
}

MergedChannel merge_channel(linalg::CMatView h, std::span<const linalg::cplx> y,
                            std::span<const RowRange> plan) {
  if (y.size() != h.rows()) {
    throw std::invalid_argument("merge_channel: y size != H rows");
  }
  const std::size_t nt = h.cols();
  std::vector<PartialQr> partials;
  partials.reserve(plan.size());
  MergedChannel out;
  out.z = linalg::CVec(merged_rows(plan, nt));
  std::size_t zrow = 0;
  for (const RowRange& range : plan) {
    linalg::CMatView rows(h.data() + range.begin * nt, range.count, nt);
    partials.push_back(compute_partial(rows));
    const std::size_t k_c = compressed_rows(range, nt);
    rotate_partial(partials.back(), y.subspan(range.begin, range.count),
                   std::span<linalg::cplx>(out.z.data() + zrow, k_c));
    zrow += k_c;
  }
  out.s = stack_partials(partials);
  return out;
}

}  // namespace flexcore::shard
