#include "shard/sharded_runtime.h"

#include "parallel/hot_path_guard.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

namespace flexcore::api {

using Clock = std::chrono::steady_clock;

/// Work order one submit() posts to every shard driver.  Heap-allocated
/// and co-owned by the mailboxes and the submitting thread, so a fan-out
/// the submitter ABANDONS (stall budget exceeded -> bypass) stays valid
/// for a driver that only gets to it later.  `job` is still a borrowed
/// pointer into the caller's frame — see the shard_stall_budget_us
/// lifetime note on ShardedRuntimeConfig.
struct ShardedRuntime::PrepJob {
  const FrameJob* job = nullptr;  ///< the caller's original job (borrowed)
  MergedFrame* merged = nullptr;
  /// Keeps the merged buffers alive for abandoned fan-outs.  A canceled
  /// job's buffer is never recycled — a stalled driver may still write it.
  std::shared_ptr<MergedFrame> merged_owner;
  obs::TraceCtx trace;  ///< decided by submit(); shard drivers record with it
  std::vector<shard::RowRange> plan;
  std::vector<std::size_t> row_offsets;  ///< merged-row start per cluster
  std::size_t nt = 0;
  std::size_t nv = 0;       ///< vectors per channel
  std::size_t nsc = 0;      ///< subcarriers
  std::uint64_t frame = 0;  ///< sharded-path sequence, fed to the probe

  /// The submitter timed out on this fan-out and went merged-monolithic:
  /// a driver seeing this skips the work entirely (the caller's borrowed
  /// spans may be on their way out).
  std::atomic<bool> canceled{false};
  /// Some shard faulted (injected or numeric) — the merged content is
  /// invalid; the submit side retries once, then bypasses.
  std::atomic<bool> failed{false};

  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = 0;  ///< shards still working on this frame
};

struct ShardedRuntime::Shard {
  Shard(std::size_t id_in, const parallel::PoolOptions& pool_opts)
      : id(id_in), pool(pool_opts) {}

  const std::size_t id;
  parallel::ThreadPool pool;

  std::mutex mu;
  std::condition_variable cv;
  /// Frames waiting for this shard, FIFO (shared: see PrepJob ownership).
  std::deque<std::shared_ptr<PrepJob>> mailbox;
  bool shutdown = false;

  // Counters behind `mu` (surfaced as ShardStats).
  std::uint64_t frames = 0;
  std::uint64_t partials = 0;
  std::uint64_t rows_processed = 0;
  std::uint64_t faults = 0;  ///< attempts this shard failed (injected+numeric)
  double busy_seconds = 0.0;
  int driver_cpu = -1;  ///< pin target for the driver thread, -1 = none

  std::thread thread;  ///< started by ShardedRuntime after construction
};

ShardedRuntime::ShardedRuntime(const ShardedRuntimeConfig& cfg)
    : cfg_(cfg), runtime_(cfg.runtime) {
  if (cfg_.shards == 0) {
    throw std::invalid_argument("ShardedRuntime: shards must be >= 1");
  }
  const std::size_t hw = parallel::default_thread_count();
  threads_per_shard_ =
      cfg_.threads_per_shard > 0
          ? cfg_.threads_per_shard
          : std::max<std::size_t>(1, hw / cfg_.shards);

  shards_.reserve(cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    parallel::PoolOptions opts;
    opts.threads = threads_per_shard_;
    int driver_cpu = -1;
    if (cfg_.pin_shard_workers) {
      // Shard s owns the cpu slice [s*T, (s+1)*T) mod hw.  Slot 0 goes to
      // the driver (= the pool's worker 0, which ThreadPool never pins);
      // spawned worker w takes pin_cpus[w], w in 1..T-1.
      opts.pin_cpus.resize(threads_per_shard_);
      for (std::size_t w = 0; w < threads_per_shard_; ++w) {
        opts.pin_cpus[w] =
            static_cast<int>((s * threads_per_shard_ + w) % hw);
      }
      driver_cpu = opts.pin_cpus[0];
    }
    shards_.emplace_back(std::make_unique<Shard>(s, opts));
    shards_.back()->driver_cpu = driver_cpu;
  }
  // Spawn the drivers only after every Shard exists: a throw above must
  // not leave joinable threads behind.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->thread = std::thread([this, s] { shard_loop(s); });
  }
}

ShardedRuntime::~ShardedRuntime() {
  // Submits have stopped (caller contract, as with Runtime), so the only
  // possible mailbox leftovers are CANCELED jobs from stalled fan-outs —
  // the drivers drain those (cheap skips) before honouring shutdown;
  // frames already handed to the inner runtime no longer need the fabric.
  for (auto& sh : shards_) {
    {
      std::lock_guard lock(sh->mu);
      parallel::guard_detail::note_lock();
      sh->shutdown = true;
    }
    sh->cv.notify_all();
  }
  for (auto& sh : shards_) sh->thread.join();
  // runtime_ (declared last) is destroyed first among the members: its
  // drain completes in-flight tickets, whose callbacks recycle the merged
  // buffers into freelist_ — still alive at that point.
}

Cell& ShardedRuntime::open_cell(const CellConfig& cfg) {
  return runtime_.open_cell(cfg);
}

FrameTicket ShardedRuntime::reconfigure(Cell& cell, const CellReconfig& rc) {
  return runtime_.reconfigure(cell, rc);
}

bool ShardedRuntime::run_one() { return runtime_.run_one(); }
void ShardedRuntime::drain() { runtime_.drain(); }

std::shared_ptr<ShardedRuntime::MergedFrame> ShardedRuntime::acquire_merged(
    std::size_t nsc, std::size_t k, std::size_t nt, std::size_t n_vectors) {
  std::shared_ptr<MergedFrame> m;
  {
    std::lock_guard lock(freelist_mu_);
    parallel::guard_detail::note_lock();
    if (!freelist_.empty()) {
      m = std::move(freelist_.back());
      freelist_.pop_back();
    }
  }
  if (!m) m = std::make_shared<MergedFrame>();
  // Reshape only where needed; every retained entry is fully overwritten
  // by the shard stage (all K rows of every channel, all K entries of
  // every z), so no zeroing.
  m->channels.resize(nsc);
  for (auto& ch : m->channels) {
    if (ch.rows() != k || ch.cols() != nt) ch = linalg::CMat(k, nt);
  }
  m->zs.resize(n_vectors);
  for (auto& z : m->zs) z.resize(k);
  return m;
}

void ShardedRuntime::recycle_merged(std::shared_ptr<MergedFrame> m) {
  std::lock_guard lock(freelist_mu_);
  parallel::guard_detail::note_lock();
  freelist_.push_back(std::move(m));
}

bool ShardedRuntime::run_prep(std::size_t shard_id, PrepJob& pj) {
  Shard& sh = *shards_[shard_id];
  const shard::RowRange range = pj.plan[shard_id];
  const std::size_t k_c = shard::compressed_rows(range, pj.nt);
  const std::size_t row_off = pj.row_offsets[shard_id];
  const std::size_t nt = pj.nt;
  const std::size_t nv = pj.nv;
  std::atomic<bool> bad{false};
  // One task per subcarrier on THIS shard's pool: the partial QR of this
  // cluster's antenna rows, its block copied into the merged stack, and
  // the cluster's slice of every received vector rotated — Q_c never
  // outlives the task.
  sh.pool.parallel_for(pj.nsc, [&](std::size_t f) {
    try {
      const linalg::CMat& h = pj.job->channels[f];
      shard::PartialQr partial =
          shard::compute_partial(h.row_range(range.begin, range.count));
      linalg::CMat& merged_h = pj.merged->channels[f];
      std::memcpy(merged_h.data() + row_off * nt, partial.r.data(),
                  k_c * nt * sizeof(linalg::cplx));
      for (std::size_t t = 0; t < nv; ++t) {
        const linalg::CVec& y = pj.job->ys[f * nv + t];
        linalg::CVec& z = pj.merged->zs[f * nv + t];
        shard::rotate_partial(
            partial, std::span<const linalg::cplx>(y.data() + range.begin,
                                                   range.count),
            std::span<linalg::cplx>(z.data() + row_off, k_c));
      }
    } catch (const std::exception&) {
      // Exceptions must never cross the pool boundary (worker_loop has no
      // handler — std::terminate on a spawned worker): a partial QR that
      // cannot factorize this cluster's rows (non-finite entries) fails
      // the shard's whole attempt instead, and the submit side's
      // retry-then-bypass ladder takes it from there.
      bad.store(true, std::memory_order_relaxed);
    }
  });
  return !bad.load(std::memory_order_relaxed);
}

void ShardedRuntime::shard_loop(std::size_t shard_id) {
  Shard& sh = *shards_[shard_id];
  if (sh.driver_cpu >= 0) parallel::pin_current_thread(sh.driver_cpu);
  {
    char track[32];
    std::snprintf(track, sizeof(track), "shard%zu", shard_id);
    obs::set_thread_track(track);
  }
  std::unique_lock lock(sh.mu);
  parallel::guard_detail::note_lock();
  for (;;) {
    sh.cv.wait(lock, [&] { return sh.shutdown || !sh.mailbox.empty(); });
    if (sh.mailbox.empty()) return;  // shutdown with everything drained
    std::shared_ptr<PrepJob> pj = std::move(sh.mailbox.front());
    sh.mailbox.pop_front();
    lock.unlock();

    // Chaos hook: an injected verdict may stall this driver and/or fail
    // the attempt outright, skipping the math — the submit side's
    // retry-then-bypass ladder handles both.
    ShardFaultAction act;
    if (fault_probe_) act = fault_probe_(shard_id, pj->frame);
    if (act.stall_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(act.stall_us));
    }

    const auto t0 = Clock::now();
    // Re-check AFTER any stall: a fan-out the submitter abandoned must not
    // be touched (the borrowed job spans may be going away).
    const bool skipped = pj->canceled.load(std::memory_order_acquire);
    bool faulted = false;
    if (!skipped) {
      faulted = act.fail || !run_prep(shard_id, *pj);
      if (faulted) pj->failed.store(true, std::memory_order_release);
    }
    const auto t1 = Clock::now();
    if (!skipped && !faulted && obs::want_span(pj->trace)) {
      // One span per cluster on the shard's own track; aux = cluster id.
      obs::record_span(obs::Stage::kShardPartialQr, obs::to_ns(t0),
                       obs::to_ns(t1), pj->trace,
                       static_cast<std::uint32_t>(shard_id));
    }
    const double secs =
        skipped ? 0.0 : std::chrono::duration<double>(t1 - t0).count();
    {
      // Notify UNDER the job lock: the moment the submitter observes
      // remaining == 0 it may move on (retry or bypass), so the cv must
      // not be touched after this block releases the mutex.
      std::lock_guard jlock(pj->mu);
      parallel::guard_detail::note_lock();
      --pj->remaining;
      pj->cv.notify_all();
    }
    pj.reset();  // drop co-ownership before blocking on the mailbox again

    lock.lock();
    parallel::guard_detail::note_lock();  // re-acquired after unlocked section
    sh.busy_seconds += secs;
    if (faulted) ++sh.faults;
  }
}

FrameTicket ShardedRuntime::submit(Cell& cell, const FrameJob& job,
                                   std::uint64_t deadline_us) {
  validate_frame_job(job, cfg_.runtime.admission_scan ? FrameCheck::kFull
                                                      : FrameCheck::kShape);
  const std::size_t nsc = job.channels.size();
  const std::size_t b = nsc > 0 ? job.channels.front().rows() : 0;
  const std::size_t effective = std::min(cfg_.shards, b);
  if (nsc == 0 || effective <= 1) {
    // Pass-through: no antennas to cluster (empty frame) or a single
    // cluster spanning the whole array.  The caller's job goes to the
    // inner runtime verbatim — bit-identical to monolithic api::Runtime.
    return runtime_.submit(cell, job, deadline_us);
  }

  const auto t0 = Clock::now();
  const std::size_t nt = job.channels.front().cols();
  const std::size_t nv = job.vectors_per_channel;

  // This is the outermost submit for sharded frames: decide the trace
  // identity here so every cluster's span and the inner runtime's stages
  // agree on the frame id and the sampling verdict.
  const obs::TraceCtx trace =
      job.trace.decided
          ? job.trace
          : obs::begin_frame(static_cast<std::uint32_t>(cell.id()));
  const std::uint64_t frame =
      frame_seq_.fetch_add(1, std::memory_order_relaxed);

  const std::vector<shard::RowRange> plan = shard::plan_shards(b, effective);
  std::vector<std::size_t> row_offsets(plan.size());
  std::size_t k = 0;
  for (std::size_t s = 0; s < plan.size(); ++s) {
    row_offsets[s] = k;
    k += shard::compressed_rows(plan[s], nt);
  }

  std::shared_ptr<MergedFrame> merged =
      acquire_merged(nsc, k, nt, job.ys.size());

  // Up to two fan-outs (first attempt + one retry after a shard fault),
  // then graceful degradation to a merged-monolithic bypass — the ticket
  // NEVER hangs on a dead or stalled cluster.
  bool prepped = false;
  bool stalled = false;
  for (int attempt = 0; attempt < 2 && !prepped && !stalled; ++attempt) {
    auto pj = std::make_shared<PrepJob>();
    pj->job = &job;
    pj->merged = merged.get();
    pj->merged_owner = merged;
    pj->trace = trace;
    pj->plan = plan;
    pj->row_offsets = row_offsets;
    pj->nt = nt;
    pj->nv = nv;
    pj->nsc = nsc;
    pj->frame = frame;
    pj->remaining = plan.size();

    // Fan the frame out to its clusters' mailboxes, then wait for all of
    // them — the only barrier in the system, and it is per-frame: two
    // threads submitting different frames interleave freely on the fabric.
    for (std::size_t s = 0; s < plan.size(); ++s) {
      Shard& sh = *shards_[s];
      {
        std::lock_guard lock(sh.mu);
        parallel::guard_detail::note_lock();
        sh.mailbox.push_back(pj);
        // Counters at enqueue time (busy_seconds follows when the work
        // runs): deterministic for stats() calls after submit returned.
        ++sh.frames;
        sh.partials += nsc;
        sh.rows_processed +=
            static_cast<std::uint64_t>(plan[s].count) * nsc;
      }
      sh.cv.notify_one();
    }
    {
      std::unique_lock lock(pj->mu);
      parallel::guard_detail::note_lock();
      if (cfg_.shard_stall_budget_us == 0) {
        pj->cv.wait(lock, [&] { return pj->remaining == 0; });
      } else if (!pj->cv.wait_for(
                     lock,
                     std::chrono::microseconds(cfg_.shard_stall_budget_us),
                     [&] { return pj->remaining == 0; })) {
        stalled = true;
      }
    }
    if (stalled) {
      // A cluster blew the stall budget.  Abandon the fan-out — a driver
      // reaching the job later sees `canceled` and skips it — and leave
      // the merged buffer co-owned by the abandoned job (a stalled driver
      // may still be writing it, so it is never recycled).
      pj->canceled.store(true, std::memory_order_release);
      merged = nullptr;
    } else if (!pj->failed.load(std::memory_order_acquire)) {
      prepped = true;
    } else if (attempt == 0) {
      // Every cluster responded (the buffer is quiescent) but at least one
      // faulted: one full re-fan overwrites every row, so a transient
      // fault heals here without the caller ever noticing.
      obs::counter_add(obs::Counter::kShardRetries);
      retries_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (!prepped) {
    // Retry exhausted or fan-out stalled: BYPASS the fabric for this
    // frame.  Rebuild the merged buffers as the raw B-antenna frame
    // (identity merge — channels and ys copied verbatim) and let the
    // inner runtime detect it monolithically; that is the K == B
    // degenerate merge, bit-identical to api::Runtime on the original
    // job.  Degraded throughput for this frame, but never a lost ticket.
    if (merged) recycle_merged(std::move(merged));  // quiescent: reuse it
    merged = acquire_merged(nsc, b, nt, job.ys.size());
    for (std::size_t f = 0; f < nsc; ++f) {
      std::memcpy(merged->channels[f].data(), job.channels[f].data(),
                  b * nt * sizeof(linalg::cplx));
    }
    for (std::size_t i = 0; i < job.ys.size(); ++i) {
      merged->zs[i] = job.ys[i];
    }
    obs::counter_add(obs::Counter::kShardBypasses);
    bypasses_.fetch_add(1, std::memory_order_relaxed);
  }

  const auto merged_at = Clock::now();
  if (prepped) {
    obs::counter_add(obs::Counter::kShardMergeFanins, effective);
  }
  if (obs::want_span(trace)) {
    // Whole-stage span on the SUBMITTER's track (fan-out through merge
    // wait); the per-cluster spans it covers live on the shard tracks.
    obs::record_span(obs::Stage::kShardPartialQr, obs::to_ns(t0),
                     obs::to_ns(merged_at), trace,
                     static_cast<std::uint32_t>(effective));
  }
  {
    const double stage_us =
        std::chrono::duration<double, std::micro>(merged_at - t0).count();
    std::lock_guard lock(shard_hist_mu_);
    parallel::guard_detail::note_lock();
    shard_hist_.record(stage_us);
  }

  FrameJob inner = job;
  inner.trace = trace;
  inner.channels = std::span<const linalg::CMat>(merged->channels);
  inner.ys = std::span<const linalg::CVec>(merged->zs);

  // The shard stage already consumed part of the frame's deadline budget.
  if (deadline_us > 0) {
    const auto spent = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              t0)
            .count());
    deadline_us = deadline_us > spent + 1 ? deadline_us - spent : 1;
  }

  FrameTicket ticket = runtime_.submit(cell, inner, deadline_us);
  // The inner runtime borrows the merged spans until the ticket is
  // terminal; the callback both keeps the buffers alive exactly that long
  // and returns them to the freelist.  `this` outlives the ticket:
  // runtime_ is a member, and its destructor completes every ticket before
  // the freelist goes away.
  ticket.on_complete([this, merged](TicketStatus, const FrameResult*) {
    recycle_merged(merged);
  });
  return ticket;
}

RuntimeStats ShardedRuntime::stats() const {
  RuntimeStats out = runtime_.stats();
  out.shards.reserve(shards_.size());
  for (const auto& sh : shards_) {
    ShardStats ss;
    ss.shard_id = sh->id;
    ss.threads = sh->pool.size();
    ss.pinned_workers = sh->pool.pinned_workers();
    std::lock_guard lock(sh->mu);
    parallel::guard_detail::note_lock();
    ss.frames = sh->frames;
    ss.partials = sh->partials;
    ss.rows_processed = sh->rows_processed;
    ss.faults = sh->faults;
    ss.busy_seconds = sh->busy_seconds;
    out.shards.push_back(ss);
  }
  out.shard_retries = retries_.load(std::memory_order_relaxed);
  out.shard_bypasses = bypasses_.load(std::memory_order_relaxed);
  {
    // The inner runtime never sees the shard stage; fold the submit-side
    // histogram into the combined per-stage view.  NOTE: recorded at
    // submit time, so (unlike the dispatch-side stages) its count can
    // exceed latency_count when frames are later shed or dropped.
    std::lock_guard lock(shard_hist_mu_);
    parallel::guard_detail::note_lock();
    out.stage_latency[static_cast<std::size_t>(obs::Stage::kShardPartialQr)]
        .merge(shard_hist_);
  }
  return out;
}

}  // namespace flexcore::api
