#include "fault/injector.h"

#include <cmath>
#include <limits>

#include "obs/obs.h"

namespace flexcore::fault {

namespace {

/// splitmix64 finalizer — the one-way mix behind every injection decision.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double u01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool is_frame_kind(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCorruptPayload:
    case FaultKind::kNonFinitePayload:
    case FaultKind::kNonFiniteChannel:
    case FaultKind::kRankDeficientChannel:
    case FaultKind::kDeadlinePressure:
    case FaultKind::kSubmitStorm:
      return true;
    case FaultKind::kNone:
    case FaultKind::kShardFail:
    case FaultKind::kShardStall:
      return false;
  }
  return false;
}

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCorruptPayload: return "corrupt_payload";
    case FaultKind::kNonFinitePayload: return "nonfinite_payload";
    case FaultKind::kNonFiniteChannel: return "nonfinite_channel";
    case FaultKind::kRankDeficientChannel: return "rankdef_channel";
    case FaultKind::kShardFail: return "shard_fail";
    case FaultKind::kShardStall: return "shard_stall";
    case FaultKind::kDeadlinePressure: return "deadline_pressure";
    case FaultKind::kSubmitStorm: return "submit_storm";
  }
  return "?";
}

bool corrupts_frame(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCorruptPayload:
    case FaultKind::kNonFinitePayload:
    case FaultKind::kNonFiniteChannel:
    case FaultKind::kRankDeficientChannel:
      return true;
    default:
      return false;
  }
}

bool Injector::fires(const FaultRule& rule, std::size_t idx,
                     std::uint64_t target, std::uint64_t frame) const {
  if (frame < rule.from_frame || frame >= rule.until_frame) return false;
  if (rule.probability >= 1.0) return true;
  if (rule.probability <= 0.0) return false;
  const std::uint64_t h =
      mix(mix(mix(plan_.seed + idx) ^ target) ^ (frame + 1));
  return u01(h) < rule.probability;
}

void Injector::count(FaultKind kind) {
  counts_[static_cast<std::size_t>(kind)].fetch_add(1,
                                                    std::memory_order_relaxed);
  obs::counter_add(obs::Counter::kFaultsInjected);
}

std::uint64_t Injector::injected_total() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

const FaultRule* Injector::decide_frame(std::size_t cell,
                                        std::uint64_t frame) const {
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (!is_frame_kind(rule.kind)) continue;
    if (rule.cell != kAnyTarget && rule.cell != cell) continue;
    if (fires(rule, i, cell, frame)) return &rule;
  }
  return nullptr;
}

void Injector::apply(const FaultRule& rule, std::size_t cell,
                     std::uint64_t frame, sim::SynthFrame& fr) {
  // Mutation sites are their own hash stream (independent of the firing
  // coin) so adding rules never shifts where an existing rule strikes.
  const std::uint64_t h0 = mix(plan_.seed ^ mix(cell * 0x10001 + frame));
  const std::size_t nsc = fr.channels.size();
  const std::size_t nvec = fr.ys.size();

  switch (rule.kind) {
    case FaultKind::kCorruptPayload: {
      // Huge but FINITE garbage: the numeric guards must NOT fire — the
      // frame detects to completion and returns nonsense symbols.
      if (nvec == 0) break;
      linalg::CVec& y = fr.ys[h0 % nvec];
      for (std::size_t e = 0; e < y.size(); ++e) {
        const std::uint64_t he = mix(h0 + e);
        y[e] = linalg::cplx(1.0e9 * (u01(he) - 0.5),
                            1.0e9 * (u01(mix(he)) - 0.5));
      }
      break;
    }
    case FaultKind::kNonFinitePayload: {
      if (nvec == 0) break;
      linalg::CVec& y = fr.ys[h0 % nvec];
      if (!y.empty()) {
        y[mix(h0) % y.size()] = linalg::cplx(kNan, 0.0);
        y[mix(h0 + 1) % y.size()] += linalg::cplx(0.0, kInf);
      }
      break;
    }
    case FaultKind::kNonFiniteChannel: {
      if (nsc == 0) break;
      linalg::CMat& h = fr.channels[h0 % nsc];
      const std::size_t n = h.rows() * h.cols();
      if (n > 0) {
        h.data()[mix(h0) % n] = linalg::cplx(kNan, kNan);
        h.data()[mix(h0 + 1) % n] = linalg::cplx(kInf, 0.0);
      }
      break;
    }
    case FaultKind::kRankDeficientChannel: {
      // A short burst of subcarriers whose channel collapses to rank < Nt
      // (column 1 := column 0); a single-user channel collapses to zero.
      if (nsc == 0) break;
      const std::size_t f0 = h0 % nsc;
      const std::size_t burst = std::min<std::size_t>(4, nsc - f0);
      for (std::size_t f = f0; f < f0 + burst; ++f) {
        linalg::CMat& h = fr.channels[f];
        const std::size_t nt = h.cols();
        for (std::size_t r = 0; r < h.rows(); ++r) {
          if (nt >= 2) {
            h.data()[r * nt + 1] = h.data()[r * nt + 0];
          } else if (nt == 1) {
            h.data()[r] = linalg::cplx(0.0, 0.0);
          }
        }
      }
      break;
    }
    case FaultKind::kDeadlinePressure:
    case FaultKind::kSubmitStorm:
      // Pressure verdicts: the payload stays intact; the driving harness
      // squeezes the deadline / duplicates the submit.  Counted here so
      // the scorecard sees them alongside the data faults.
      break;
    case FaultKind::kNone:
    case FaultKind::kShardFail:
    case FaultKind::kShardStall:
      return;  // not frame kinds — nothing injected, nothing counted
  }
  count(rule.kind);
}

api::ShardFaultAction Injector::shard_action(std::size_t shard,
                                             std::uint64_t frame) {
  api::ShardFaultAction act;
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.kind != FaultKind::kShardFail &&
        rule.kind != FaultKind::kShardStall) {
      continue;
    }
    if (rule.shard != kAnyTarget && rule.shard != shard) continue;
    if (!fires(rule, i, shard, frame)) continue;
    if (rule.kind == FaultKind::kShardFail && !act.fail) {
      act.fail = true;
      count(rule.kind);
    } else if (rule.kind == FaultKind::kShardStall && act.stall_us == 0) {
      act.stall_us = rule.stall_us;
      count(rule.kind);
    }
  }
  return act;
}

}  // namespace flexcore::fault
