// Seeded, scriptable fault injection for chaos testing the serving stack.
//
// The robustness claim of an always-on baseband runtime is not "faults are
// rare" but "faults are survived": a corrupt fronthaul payload, a numerically
// broken channel estimate, a stalled antenna-cluster DSP or an overload burst
// must degrade ONE frame's outcome — never the runtime's invariants (no lost
// ticket, no FIFO inversion, no poisoned later frame).  fault::Injector is
// the adversary that proves it: a declarative FaultPlan (list of FaultRule
// windows) evaluated by a pure hash of (seed, rule, target, frame), so a
// whole chaos campaign replays bit-identically from one seed — a failing
// soak run is a repro, not an anecdote.
//
// Two injection surfaces, matching where real faults enter:
//   * Frame faults (decide_frame/apply) mutate a sim::SynthFrame before
//     submit: non-finite or garbage I/Q payloads, NaN/Inf channel entries,
//     rank-deficient channel bursts — plus submit-side pressure verdicts
//     (deadline squeeze, duplicate-submit storms) the driving harness
//     enacts.
//   * Shard faults (shard_probe) plug into
//     api::ShardedRuntime::set_fault_probe: per-(cluster, frame) fail and
//     stall verdicts exercising the retry-then-bypass ladder.
//
// Everything is thread-safe: decisions are stateless hashes and the
// injection counters are relaxed atomics (shard probes run concurrently on
// the driver threads).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "shard/sharded_runtime.h"
#include "sim/frame_synth.h"

namespace flexcore::fault {

/// What a rule injects.  kCorruptPayload stays FINITE (detection completes
/// and returns garbage — the outcome a CRC would catch); the non-finite and
/// rank-deficient kinds trip the numeric guards (quarantine/fail); the
/// shard kinds exercise the fabric's degradation ladder; the pressure kinds
/// are verdicts the submitting harness enacts (the injector cannot shrink a
/// deadline by itself).
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kCorruptPayload,        ///< huge-but-finite garbage in ys
  kNonFinitePayload,      ///< NaN/Inf entries in ys
  kNonFiniteChannel,      ///< NaN/Inf entries in H
  kRankDeficientChannel,  ///< duplicated channel columns (rank < Nt)
  kShardFail,             ///< cluster reports a failed prep attempt
  kShardStall,            ///< cluster driver sleeps stall_us first
  kDeadlinePressure,      ///< harness submits with a near-zero deadline
  kSubmitStorm,           ///< harness submits storm_copies duplicates
};
inline constexpr std::size_t kFaultKindCount = 9;
const char* to_string(FaultKind kind);

/// True for kinds that corrupt the frame's DATA so its detection result is
/// untrusted (quarantined, failed, or garbage-Done); pressure/shard kinds
/// leave the payload intact — those frames must still detect exactly.
bool corrupts_frame(FaultKind kind);

/// Wildcard for FaultRule cell/shard targets.
inline constexpr std::uint32_t kAnyTarget =
    std::numeric_limits<std::uint32_t>::max();

/// One injection window.  A rule FIRES for (target, frame) when the target
/// filter matches, from_frame <= frame < until_frame, and the seeded coin
/// (probability) lands — all pure functions of the plan seed, so replays
/// are exact.
struct FaultRule {
  FaultKind kind = FaultKind::kNone;
  std::uint32_t cell = kAnyTarget;   ///< frame-kind target filter
  std::uint32_t shard = kAnyTarget;  ///< shard-kind target filter
  std::uint64_t from_frame = 0;
  std::uint64_t until_frame = std::numeric_limits<std::uint64_t>::max();
  double probability = 1.0;
  std::uint32_t stall_us = 0;      ///< kShardStall only
  std::uint32_t storm_copies = 2;  ///< kSubmitStorm only (extra submits)
};

/// A whole campaign: one seed + the rule list.  First matching rule wins
/// (rule order is the priority order).
struct FaultPlan {
  std::uint64_t seed = 0x5eed;
  std::vector<FaultRule> rules;
};

class Injector {
 public:
  explicit Injector(FaultPlan plan) : plan_(std::move(plan)) {}

  const FaultPlan& plan() const noexcept { return plan_; }

  /// First frame-kind rule firing for (cell, frame), nullptr when the
  /// frame is clean.  Pure — same plan, cell and frame always agree.
  const FaultRule* decide_frame(std::size_t cell, std::uint64_t frame) const;

  /// Injects `rule` into the synthesized frame in place (payload/channel
  /// kinds; pressure kinds only count — the harness enacts them) and bumps
  /// the by-kind counter + obs::Counter::kFaultsInjected.  The mutation
  /// sites are seeded by (plan seed, cell, frame): deterministic.
  void apply(const FaultRule& rule, std::size_t cell, std::uint64_t frame,
             sim::SynthFrame& fr);

  /// Shard-side verdict for (shard, sharded-frame seq); counts injections.
  /// Thread-safe — called concurrently by the cluster drivers.
  api::ShardFaultAction shard_action(std::size_t shard, std::uint64_t frame);

  /// The verdict bound as a ShardedRuntime probe (keep `this` alive while
  /// installed).
  api::ShardFaultProbe shard_probe() {
    return [this](std::size_t shard, std::uint64_t frame) {
      return shard_action(shard, frame);
    };
  }

  std::uint64_t injected(FaultKind kind) const {
    return counts_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t injected_total() const;

 private:
  /// The seeded coin for rule `idx` on (target, frame).
  bool fires(const FaultRule& rule, std::size_t idx, std::uint64_t target,
             std::uint64_t frame) const;
  void count(FaultKind kind);

  FaultPlan plan_;
  std::array<std::atomic<std::uint64_t>, kFaultKindCount> counts_{};
};

}  // namespace flexcore::fault
