#include "modulation/constellation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace flexcore::modulation {

namespace {
bool is_supported_order(int m) {
  return m == 4 || m == 16 || m == 64 || m == 256;
}
}  // namespace

Constellation::Constellation(int order) : order_(order) {
  if (!is_supported_order(order)) {
    throw std::invalid_argument("Constellation: order must be 4, 16, 64 or 256");
  }
  side_ = static_cast<int>(std::lround(std::sqrt(static_cast<double>(order))));
  bits_ = 0;
  for (int m = order; m > 1; m /= 2) ++bits_;

  // Unit average energy: E[|s|^2] = 2 * (M - 1) / 3 * step^2 with PAM levels
  // +-1, +-3, ... so the normalizing step is sqrt(3 / (2 (M - 1))).
  scale_ = std::sqrt(3.0 / (2.0 * (order_ - 1)));
  inv_scale_ = 1.0 / scale_;

  points_.resize(static_cast<std::size_t>(order_));
  for (int i = 0; i < side_; ++i) {
    for (int q = 0; q < side_; ++q) {
      points_[static_cast<std::size_t>(index_from_axes(i, q))] =
          cplx{pam_level(i), pam_level(q)};
    }
  }

  axis_to_gray_.resize(static_cast<std::size_t>(side_));
  gray_to_axis_.resize(static_cast<std::size_t>(side_));
  for (int i = 0; i < side_; ++i) {
    const int g = i ^ (i >> 1);  // binary-reflected Gray code
    axis_to_gray_[static_cast<std::size_t>(i)] = g;
    gray_to_axis_[static_cast<std::size_t>(g)] = i;
  }
}

int Constellation::slice(cplx z) const noexcept {
  auto clamp_axis = [this](double coord) {
    int i = static_cast<int>(
        std::lround((coord * inv_scale_ + (side_ - 1)) / 2.0));
    return std::clamp(i, 0, side_ - 1);
  };
  return index_from_axes(clamp_axis(z.real()), clamp_axis(z.imag()));
}

int Constellation::unbounded_axis_index(double coord) const noexcept {
  return static_cast<int>(std::lround((coord * inv_scale_ + (side_ - 1)) / 2.0));
}

int Constellation::kth_nearest_exact(cplx z, int k) const {
  std::vector<int> idx(points_.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
    return linalg::abs2(points_[static_cast<std::size_t>(a)] - z) <
           linalg::abs2(points_[static_cast<std::size_t>(b)] - z);
  });
  if (k < 1 || k > order_) throw std::out_of_range("kth_nearest_exact: bad k");
  return idx[static_cast<std::size_t>(k - 1)];
}

int Constellation::map_bits(const std::vector<std::uint8_t>& bits,
                            std::size_t offset) const {
  if (offset + static_cast<std::size_t>(bits_) > bits.size()) {
    throw std::out_of_range("map_bits: not enough bits");
  }
  const int half = bits_ / 2;
  int v_re = 0, v_im = 0;
  for (int b = 0; b < half; ++b) {
    v_re = (v_re << 1) | bits[offset + static_cast<std::size_t>(b)];
  }
  for (int b = 0; b < half; ++b) {
    v_im = (v_im << 1) | bits[offset + static_cast<std::size_t>(half + b)];
  }
  return index_from_axes(gray_to_axis_[static_cast<std::size_t>(v_re)],
                         gray_to_axis_[static_cast<std::size_t>(v_im)]);
}

void Constellation::unmap_bits(int index, std::vector<std::uint8_t>& out) const {
  const int half = bits_ / 2;
  const int g_re = axis_to_gray_[static_cast<std::size_t>(axis_re(index))];
  const int g_im = axis_to_gray_[static_cast<std::size_t>(axis_im(index))];
  for (int b = half - 1; b >= 0; --b) {
    out.push_back(static_cast<std::uint8_t>((g_re >> b) & 1));
  }
  for (int b = half - 1; b >= 0; --b) {
    out.push_back(static_cast<std::uint8_t>((g_im >> b) & 1));
  }
}

double Constellation::average_energy() const {
  double e = 0.0;
  for (cplx p : points_) e += linalg::abs2(p);
  return e / static_cast<double>(order_);
}

}  // namespace flexcore::modulation
