#include "modulation/error_rates.h"

#include <algorithm>
#include <cmath>

namespace flexcore::modulation {

namespace {
// Clamp bounds keeping the geometric model Pl(k) = (1-Pe) Pe^(k-1) a valid,
// strictly decreasing distribution.
constexpr double kPeMin = 1e-12;
constexpr double kPeMax = 1.0 - 1e-9;
}  // namespace

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double pam_symbol_error(int m, double dmin, double sigma_r) {
  if (sigma_r <= 0.0) return 0.0;
  const double arg = (dmin / 2.0) / sigma_r;
  return 2.0 * (1.0 - 1.0 / static_cast<double>(m)) * q_function(arg);
}

double qam_symbol_error(const Constellation& c, double gain, double noise_var) {
  if (noise_var <= 0.0) return 0.0;
  const double sigma_r = std::sqrt(noise_var / 2.0);
  const double dmin = gain * c.min_distance();
  const double p_axis = pam_symbol_error(c.side(), dmin, sigma_r);
  const double ser = 1.0 - (1.0 - p_axis) * (1.0 - p_axis);
  return std::clamp(ser, 0.0, 1.0);
}

double level_error_probability(PeModel model, const Constellation& c,
                               double r_ll, double noise_var) {
  double pe = 0.0;
  switch (model) {
    case PeModel::kPaperErfc: {
      // Eq. 4 as printed; Es = 1 with our unit-energy constellations.
      const double sigma = std::sqrt(noise_var);
      const double prefactor = 2.0 + 2.0 / std::sqrt(static_cast<double>(c.order()));
      pe = prefactor * std::erfc(std::abs(r_ll) / sigma);
      break;
    }
    case PeModel::kExactSer:
    case PeModel::kRayleighCalibrated: {
      // Appendix Eq. 10/11: the geometric model is anchored so that the k=1
      // probability equals the exact AWGN SER; both variants therefore
      // evaluate the same closed form.
      pe = qam_symbol_error(c, std::abs(r_ll), noise_var);
      break;
    }
  }
  return std::clamp(pe, kPeMin, kPeMax);
}

}  // namespace flexcore::modulation
