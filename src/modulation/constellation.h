// Square QAM constellations with Gray bit mapping.
//
// All constellations are normalized to unit average symbol energy (Es = 1),
// the convention assumed by the probability model of the paper (Eq. 4) and
// by the SNR definitions in the simulation harness.
//
// Internally a square M-QAM symbol is the pair (iI, iQ) of PAM indices,
// iI, iQ in [0, sqrt(M)), with amplitude (2*idx - (m-1)) * scale on each
// axis.  The *symbol index* is iI * m + iQ.  Bits map to each axis
// independently through a binary-reflected Gray code, so adjacent
// constellation points differ in exactly one bit per axis.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "linalg/types.h"

namespace flexcore::modulation {

using linalg::cplx;

/// Supported modulation orders.
enum class QamOrder : int {
  kQam4 = 4,
  kQam16 = 16,
  kQam64 = 64,
  kQam256 = 256,
};

/// Square M-QAM constellation with Gray mapping and unit average energy.
class Constellation {
 public:
  /// Builds an M-QAM constellation.  `order` must be a perfect square power
  /// of four (4, 16, 64, 256); throws std::invalid_argument otherwise.
  explicit Constellation(int order);
  explicit Constellation(QamOrder order) : Constellation(static_cast<int>(order)) {}

  int order() const noexcept { return order_; }                ///< M
  int side() const noexcept { return side_; }                  ///< sqrt(M)
  int bits_per_symbol() const noexcept { return bits_; }       ///< log2(M)
  double scale() const noexcept { return scale_; }             ///< PAM step / 2
  /// Precomputed 1 / scale(): the slicer quantizes by multiplying with
  /// this (division is the single hottest op on the detection fast path).
  /// Kernels replicating the slicer must use this same value so their
  /// decisions stay bit-identical.
  double inv_scale() const noexcept { return inv_scale_; }
  /// Minimum distance between adjacent constellation points (= 2*scale).
  double min_distance() const noexcept { return 2.0 * scale_; }

  /// All constellation points, indexed by symbol index.
  const std::vector<cplx>& points() const noexcept { return points_; }
  cplx point(int index) const { return points_[static_cast<std::size_t>(index)]; }

  /// PAM amplitude for axis index i in [0, side): (2i - (side-1)) * scale.
  double pam_level(int i) const noexcept {
    return (2.0 * i - (side_ - 1)) * scale_;
  }

  /// Symbol index from per-axis PAM indices.
  int index_from_axes(int i_re, int i_im) const noexcept {
    return i_re * side_ + i_im;
  }
  int axis_re(int index) const noexcept { return index / side_; }
  int axis_im(int index) const noexcept { return index % side_; }

  /// Nearest constellation point to z (hard decision), O(1).
  int slice(cplx z) const noexcept;

  /// Nearest *integer lattice* axis index to the given coordinate, without
  /// clamping to the constellation boundary.  Used by the FlexCore ordering
  /// LUT, where the slicer square may be centered outside the constellation.
  int unbounded_axis_index(double coord) const noexcept;

  /// Whether an (unbounded) axis-index pair addresses a real symbol.
  bool axes_in_range(int i_re, int i_im) const noexcept {
    return i_re >= 0 && i_re < side_ && i_im >= 0 && i_im < side_;
  }

  /// The k-th closest constellation point to z (k is 1-based), by exhaustive
  /// distance sort.  O(M log M); reference implementation used by tests and
  /// by the exact-ordering detection variant.
  int kth_nearest_exact(cplx z, int k) const;

  /// Gray-maps `bits_per_symbol()` bits (MSB first) to a symbol index.
  int map_bits(const std::vector<std::uint8_t>& bits, std::size_t offset = 0) const;

  /// Inverse of map_bits: appends `bits_per_symbol()` bits to `out`.
  void unmap_bits(int index, std::vector<std::uint8_t>& out) const;

  /// Average symbol energy (should be 1.0 up to rounding; exposed for tests).
  double average_energy() const;

 private:
  int order_;
  int side_;
  int bits_;
  double scale_;
  double inv_scale_;
  std::vector<cplx> points_;
  std::vector<int> gray_to_axis_;  // gray code value -> PAM axis index
  std::vector<int> axis_to_gray_;  // PAM axis index -> gray code value
};

}  // namespace flexcore::modulation
