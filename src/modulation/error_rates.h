// Analytic symbol-error-rate expressions for AWGN QAM.
//
// These feed FlexCore's probabilistic path model (Eq. 4 / Appendix Eq. 11 of
// the paper).  Three variants of the per-level "first point wrong"
// probability Pe are provided; see docs on PeModel.
#pragma once

#include "modulation/constellation.h"

namespace flexcore::modulation {

/// Gaussian tail function Q(x) = P(N(0,1) > x).
double q_function(double x);

/// Exact symbol error probability of an m-ary PAM axis with minimum distance
/// `dmin` under real Gaussian noise of standard deviation `sigma_r`.
double pam_symbol_error(int m, double dmin, double sigma_r);

/// Exact square M-QAM symbol error probability under complex AWGN with
/// per-complex-sample variance `noise_var` (so each real axis has variance
/// noise_var / 2), for a constellation scaled by `gain` (i.e. the received
/// minimum distance is gain * c.min_distance()).
double qam_symbol_error(const Constellation& c, double gain, double noise_var);

/// Which analytic model supplies the per-level probability Pe(l) used by
/// FlexCore's pre-processing (see DESIGN.md "Eq. 4 prefactor").
enum class PeModel {
  /// Eq. 4 exactly as printed in the paper:
  ///   Pe = (2 + 2/sqrt(M)) * erfc(|R(l,l)| * sqrt(Es) / sigma),
  /// clamped into (0, 1).  This is the default used everywhere.
  kPaperErfc,
  /// Exact AWGN square-QAM SER (qam_symbol_error) — the "true" probability
  /// that the nearest point is not the transmitted one.
  kExactSer,
  /// Appendix Eq. 10 calibration: Pe = exp(-c / sigma^2) with c chosen so
  /// the k = 1 probability matches the exact SER.  Identical to kExactSer by
  /// construction; kept separate to document the derivation.
  kRayleighCalibrated,
};

/// Per-level probability Pe(l) that the closest constellation point to the
/// effective received point is NOT the transmitted one, for channel gain
/// |R(l,l)| = `r_ll` and complex noise variance `noise_var`.
double level_error_probability(PeModel model, const Constellation& c,
                               double r_ll, double noise_var);

}  // namespace flexcore::modulation
