#include "obs/obs.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

namespace flexcore::obs {

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kSubmit: return "submit";
    case Stage::kQueueWait: return "queue-wait";
    case Stage::kShardPartialQr: return "shard-partial-qr";
    case Stage::kPreprocess: return "preprocess";
    case Stage::kPathGrid: return "path-grid";
    case Stage::kReconstruct: return "reconstruct";
    case Stage::kComplete: return "complete";
    case Stage::kControl: return "control";
  }
  return "?";
}

const char* to_string(Counter counter) {
  switch (counter) {
    case Counter::kFramesSubmitted: return "frames_submitted";
    case Counter::kFramesCompleted: return "frames_completed";
    case Counter::kFramesDropped: return "frames_dropped";
    case Counter::kFramesExpired: return "frames_expired";
    case Counter::kFramesFailed: return "frames_failed";
    case Counter::kReconfigsApplied: return "reconfigs_applied";
    case Counter::kPreprocReuseHits: return "preproc_reuse_hits";
    case Counter::kPreprocReuseMisses: return "preproc_reuse_misses";
    case Counter::kSicFallbacks: return "sic_fallbacks";
    case Counter::kI16BoundaryRescans: return "i16_boundary_rescans";
    case Counter::kShardMergeFanins: return "shard_merge_fanins";
    case Counter::kControlDecisions: return "control_decisions";
    case Counter::kFramesQuarantined: return "frames_quarantined";
    case Counter::kShardRetries: return "shard_retries";
    case Counter::kShardBypasses: return "shard_bypasses";
    case Counter::kWatchdogTransitions: return "watchdog_transitions";
    case Counter::kFaultsInjected: return "faults_injected";
  }
  return "?";
}

const char* to_string(ControlReason reason) {
  switch (reason) {
    case ControlReason::kInit: return "init";
    case ControlReason::kSnr: return "snr";
    case ControlReason::kError: return "error";
    case ControlReason::kLoadDegrade: return "load-degrade";
    case ControlReason::kLoadRestore: return "load-restore";
    case ControlReason::kOther: return "other";
  }
  return "?";
}

ControlReason control_reason_from(const char* reason) {
  if (reason == nullptr) return ControlReason::kOther;
  if (std::strcmp(reason, "init") == 0) return ControlReason::kInit;
  if (std::strcmp(reason, "snr") == 0) return ControlReason::kSnr;
  if (std::strcmp(reason, "error") == 0) return ControlReason::kError;
  if (std::strcmp(reason, "load-degrade") == 0) {
    return ControlReason::kLoadDegrade;
  }
  if (std::strcmp(reason, "load-restore") == 0) {
    return ControlReason::kLoadRestore;
  }
  return ControlReason::kOther;
}

namespace {

using SteadyClock = std::chrono::steady_clock;

// ------------------------------------------------------------------ globals
// Counters and knobs are process-global relaxed atomics: the hot path only
// ever fetch_adds or loads them.

std::array<std::atomic<std::uint64_t>, kCounterCount>& counters() {
  static std::array<std::atomic<std::uint64_t>, kCounterCount> c{};
  return c;
}

std::array<std::atomic<std::uint64_t>, kMaxLadderRungs>& rungs() {
  static std::array<std::atomic<std::uint64_t>, kMaxLadderRungs> r{};
  return r;
}

std::atomic<std::uint32_t> g_sample_every{0};
std::atomic<std::uint64_t> g_frame_seq{0};
std::atomic<std::size_t> g_ring_capacity{1024};

SteadyClock::time_point epoch() {
  static const SteadyClock::time_point e = SteadyClock::now();
  return e;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n && p < (std::size_t{1} << 30)) p <<= 1;
  return p;
}

// ---------------------------------------------------------------- span ring
// One ring per recording thread.  The owner is the only writer; drains may
// read concurrently from any thread.  Each slot carries a seqlock-style
// generation word: the writer marks the slot odd (in progress), stores the
// payload, then publishes 2*pos+2 with release order — a reader that sees
// matching generations before and after its payload loads got a coherent
// span, anything else is discarded.  All payload fields are relaxed
// atomics, so a torn read is merely rejected, never undefined behaviour.

struct alignas(64) Slot {
  std::atomic<std::uint64_t> gen{0};  ///< 2*pos+2 when slot holds span #pos
  std::atomic<std::uint64_t> t0{0};
  std::atomic<std::uint64_t> t1{0};
  std::atomic<std::uint64_t> meta{0};  ///< aux:32 | cell:16 | flags:8 | stage:8
  std::atomic<std::uint64_t> frame{0};
};

constexpr std::uint64_t kFlagInstant = 1;

std::uint64_t pack_meta(Stage stage, std::uint32_t cell, std::uint32_t aux,
                        bool instant) {
  const std::uint64_t flags = instant ? kFlagInstant : 0;
  return (static_cast<std::uint64_t>(aux) << 32) |
         (static_cast<std::uint64_t>(cell & 0xffffu) << 16) | (flags << 8) |
         static_cast<std::uint64_t>(stage);
}

struct ThreadRing {
  explicit ThreadRing(std::size_t capacity)
      : slots(new Slot[capacity]), mask(capacity - 1), cap(capacity) {}

  // Owner-thread write path: wait-free, allocation-free.
  void record(Stage stage, std::uint64_t t0_ns, std::uint64_t t1_ns,
              const TraceCtx& ctx, std::uint32_t aux, bool instant) {
    const std::uint64_t pos = head.load(std::memory_order_relaxed);
    Slot& s = slots[pos & mask];
    s.gen.store(2 * pos + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.t0.store(t0_ns, std::memory_order_relaxed);
    s.t1.store(t1_ns, std::memory_order_relaxed);
    s.meta.store(pack_meta(stage, ctx.cell, aux, instant),
                 std::memory_order_relaxed);
    s.frame.store(ctx.id, std::memory_order_relaxed);
    s.gen.store(2 * pos + 2, std::memory_order_release);
    head.store(pos + 1, std::memory_order_release);
  }

  // Drain-side read of span #pos; false when the slot was overwritten or
  // is mid-write.
  bool read(std::uint64_t pos, std::size_t track, SpanRecord* out) const {
    const Slot& s = slots[pos & mask];
    const std::uint64_t g1 = s.gen.load(std::memory_order_acquire);
    if (g1 != 2 * pos + 2) return false;
    out->t0_ns = s.t0.load(std::memory_order_relaxed);
    out->t1_ns = s.t1.load(std::memory_order_relaxed);
    const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
    out->frame_id = s.frame.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.gen.load(std::memory_order_relaxed) != g1) return false;
    out->stage = static_cast<Stage>(meta & 0xff);
    out->instant = ((meta >> 8) & 0xff & kFlagInstant) != 0;
    out->cell = static_cast<std::uint32_t>((meta >> 16) & 0xffff);
    out->aux = static_cast<std::uint32_t>(meta >> 32);
    out->track = track;
    return true;
  }

  std::unique_ptr<Slot[]> slots;
  std::size_t mask;
  std::size_t cap;
  std::atomic<std::uint64_t> head{0};  ///< next span sequence to write
  char track_name[48] = {};            ///< guarded by the registry mutex
};

// Registry of every ring ever created.  Leaked on purpose: recording
// threads may still be alive during static destruction, and the rings of
// exited threads keep their history for post-mortem export.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadRing>> rings;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

struct TlsState {
  ThreadRing* ring = nullptr;
  char pending_name[48] = {};
};

thread_local TlsState t_tls;

ThreadRing* register_ring(TlsState& tls) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  const std::size_t cap =
      round_up_pow2(std::max<std::size_t>(
          2, g_ring_capacity.load(std::memory_order_relaxed)));
  reg.rings.push_back(std::make_unique<ThreadRing>(cap));
  ThreadRing* ring = reg.rings.back().get();
  if (tls.pending_name[0] != '\0') {
    std::snprintf(ring->track_name, sizeof ring->track_name, "%s",
                  tls.pending_name);
  } else {
    std::snprintf(ring->track_name, sizeof ring->track_name, "thread%zu",
                  reg.rings.size() - 1);
  }
  tls.ring = ring;
  return ring;
}

// Environment bootstrap, once per process before main-line use: the hot
// path never touches getenv.
std::uint64_t env_u64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<std::uint64_t>(parsed) : def;
}

[[maybe_unused]] const bool g_env_initialized = [] {
  if (kLevel >= 2) {
    const char* trace = std::getenv("FLEXCORE_OBS_TRACE");
    const bool on =
        trace != nullptr && *trace != '\0' && std::strcmp(trace, "0") != 0;
    if (on) {
      g_sample_every.store(
          static_cast<std::uint32_t>(env_u64("FLEXCORE_OBS_SAMPLE", 1)),
          std::memory_order_relaxed);
    }
    g_ring_capacity.store(
        static_cast<std::size_t>(env_u64("FLEXCORE_OBS_RING", 1024)),
        std::memory_order_relaxed);
  }
  return true;
}();

}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          SteadyClock::now() - epoch())
          .count());
}

std::uint64_t to_ns(std::chrono::steady_clock::time_point tp) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch());
  return d.count() > 0 ? static_cast<std::uint64_t>(d.count()) : 0;
}

bool tracing_enabled() {
  if constexpr (kLevel < 2) return false;
  return g_sample_every.load(std::memory_order_relaxed) != 0;
}

namespace detail {

void counter_add_impl(Counter counter, std::uint64_t n) {
  counters()[static_cast<std::size_t>(counter)].fetch_add(
      n, std::memory_order_relaxed);
}

void shed_ladder_rung_impl(std::size_t rung) {
  if (rung >= kMaxLadderRungs) rung = kMaxLadderRungs - 1;
  rungs()[rung].fetch_add(1, std::memory_order_relaxed);
}

void record_span_impl(Stage stage, std::uint64_t t0_ns, std::uint64_t t1_ns,
                      const TraceCtx& ctx, std::uint32_t aux, bool instant) {
  TlsState& tls = t_tls;
  ThreadRing* ring = tls.ring;
  if (ring == nullptr) ring = register_ring(tls);  // cold: lock + alloc
  ring->record(stage, t0_ns, t1_ns, ctx, aux, instant);
}

TraceCtx begin_frame_impl(std::uint32_t cell) {
  TraceCtx ctx;
  ctx.decided = true;
  ctx.cell = cell;
  const std::uint32_t every = g_sample_every.load(std::memory_order_relaxed);
  if (every != 0) {
    const std::uint64_t n = g_frame_seq.fetch_add(1, std::memory_order_relaxed);
    ctx.id = n + 1;
    ctx.sampled = (n % every) == 0;
  }
  return ctx;
}

}  // namespace detail

void configure(const ObsConfig& cfg) {
  g_sample_every.store(cfg.sample_every, std::memory_order_relaxed);
  g_ring_capacity.store(std::max<std::size_t>(2, cfg.ring_capacity),
                        std::memory_order_relaxed);
}

ObsConfig current_config() {
  ObsConfig cfg;
  cfg.sample_every = g_sample_every.load(std::memory_order_relaxed);
  cfg.ring_capacity = g_ring_capacity.load(std::memory_order_relaxed);
  return cfg;
}

void set_thread_track(const char* name) {
  if (kLevel < 2 || name == nullptr) return;
  TlsState& tls = t_tls;
  std::snprintf(tls.pending_name, sizeof tls.pending_name, "%s", name);
  if (tls.ring != nullptr) {
    // Renames are control-plane: serialize against drains via the registry.
    Registry& reg = registry();
    std::lock_guard lock(reg.mu);
    std::snprintf(tls.ring->track_name, sizeof tls.ring->track_name, "%s",
                  name);
  }
}

TraceSnapshot drain_spans() {
  TraceSnapshot snap;
  if (kLevel < 2) return snap;
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  snap.tracks.reserve(reg.rings.size());
  for (std::size_t i = 0; i < reg.rings.size(); ++i) {
    const ThreadRing& ring = *reg.rings[i];
    snap.tracks.emplace_back(ring.track_name);
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t start = head > ring.cap ? head - ring.cap : 0;
    for (std::uint64_t pos = start; pos < head; ++pos) {
      SpanRecord rec;
      if (ring.read(pos, i, &rec)) snap.spans.push_back(rec);
    }
  }
  std::stable_sort(snap.spans.begin(), snap.spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.t0_ns < b.t0_ns;
                   });
  return snap;
}

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot snap;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    snap.counters[i] = counters()[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kMaxLadderRungs; ++i) {
    snap.shed_per_rung[i] = rungs()[i].load(std::memory_order_relaxed);
  }
  if (kLevel >= 2) {
    Registry& reg = registry();
    std::lock_guard lock(reg.mu);
    for (const auto& ring : reg.rings) {
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      snap.spans_recorded += head;
      snap.spans_retained += std::min<std::uint64_t>(head, ring->cap);
    }
  }
  return snap;
}

std::string metrics_to_text(const MetricsSnapshot& snapshot) {
  std::string out;
  char line[128];
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    std::snprintf(line, sizeof line, "obs_%s %llu\n",
                  to_string(static_cast<Counter>(i)),
                  static_cast<unsigned long long>(snapshot.counters[i]));
    out += line;
  }
  for (std::size_t r = 0; r < kMaxLadderRungs; ++r) {
    if (snapshot.shed_per_rung[r] == 0) continue;  // sparse: rungs are rare
    std::snprintf(line, sizeof line, "obs_shed_frames{rung=\"%zu\"} %llu\n",
                  r,
                  static_cast<unsigned long long>(snapshot.shed_per_rung[r]));
    out += line;
  }
  std::snprintf(line, sizeof line, "obs_spans_recorded %llu\n",
                static_cast<unsigned long long>(snapshot.spans_recorded));
  out += line;
  std::snprintf(line, sizeof line, "obs_spans_retained %llu\n",
                static_cast<unsigned long long>(snapshot.spans_retained));
  out += line;
  return out;
}

std::string metrics_to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\": {";
  char buf[96];
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    std::snprintf(buf, sizeof buf, "%s\"%s\": %llu", i ? ", " : "",
                  to_string(static_cast<Counter>(i)),
                  static_cast<unsigned long long>(snapshot.counters[i]));
    out += buf;
  }
  out += "}, \"shed_per_rung\": [";
  for (std::size_t r = 0; r < kMaxLadderRungs; ++r) {
    std::snprintf(buf, sizeof buf, "%s%llu", r ? ", " : "",
                  static_cast<unsigned long long>(snapshot.shed_per_rung[r]));
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "], \"spans_recorded\": %llu, \"spans_retained\": %llu}",
                static_cast<unsigned long long>(snapshot.spans_recorded),
                static_cast<unsigned long long>(snapshot.spans_retained));
  out += buf;
  return out;
}

void reset_for_test(const ObsConfig& cfg) {
  configure(cfg);
  for (auto& c : counters()) c.store(0, std::memory_order_relaxed);
  for (auto& r : rungs()) r.store(0, std::memory_order_relaxed);
  g_frame_seq.store(0, std::memory_order_relaxed);
  if (kLevel < 2) return;
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  const std::size_t cap = round_up_pow2(std::max<std::size_t>(
      2, g_ring_capacity.load(std::memory_order_relaxed)));
  for (auto& ring : reg.rings) {
    // Caller quiesced the writers (contract), so reshaping is safe.
    if (ring->cap != cap) {
      ring->slots.reset(new Slot[cap]);
      ring->mask = cap - 1;
      ring->cap = cap;
    } else {
      for (std::size_t i = 0; i < cap; ++i) {
        ring->slots[i].gen.store(0, std::memory_order_relaxed);
      }
    }
    ring->head.store(0, std::memory_order_relaxed);
  }
}

}  // namespace flexcore::obs
