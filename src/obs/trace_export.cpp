#include "obs/trace_export.h"

#include <cstdio>

namespace flexcore::obs {

namespace {

void append_escaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string chrome_trace_json(const TraceSnapshot& snapshot) {
  std::string out = "{\"traceEvents\": [\n";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
                "\"tid\": 0, \"args\": {\"name\": \"flexcore\"}}");
  out += buf;
  for (std::size_t t = 0; t < snapshot.tracks.size(); ++t) {
    std::snprintf(buf, sizeof buf,
                  ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", "
                  "\"pid\": 0, \"tid\": %zu, \"args\": {\"name\": ",
                  t);
    out += buf;
    append_escaped(&out, snapshot.tracks[t]);
    out += "}}";
  }
  for (const SpanRecord& span : snapshot.spans) {
    // Trace-event timestamps are microseconds; keep nanosecond precision in
    // the fractional digits.
    const double ts_us = static_cast<double>(span.t0_ns) / 1000.0;
    if (span.instant) {
      std::snprintf(buf, sizeof buf,
                    ",\n  {\"name\": \"%s\", \"cat\": \"flexcore\", "
                    "\"ph\": \"i\", \"s\": \"t\", \"ts\": %.3f, "
                    "\"pid\": 0, \"tid\": %zu, \"args\": {\"frame\": %llu, "
                    "\"cell\": %u",
                    to_string(span.stage), ts_us, span.track,
                    static_cast<unsigned long long>(span.frame_id),
                    span.cell);
      out += buf;
      if (span.stage == Stage::kControl) {
        std::snprintf(buf, sizeof buf, ", \"reason\": \"%s\"",
                      to_string(static_cast<ControlReason>(
                          span.aux <=
                                  static_cast<std::uint32_t>(
                                      ControlReason::kOther)
                              ? span.aux
                              : static_cast<std::uint32_t>(
                                    ControlReason::kOther))));
        out += buf;
      }
      out += "}}";
    } else {
      const double dur_us =
          static_cast<double>(span.t1_ns - span.t0_ns) / 1000.0;
      std::snprintf(buf, sizeof buf,
                    ",\n  {\"name\": \"%s\", \"cat\": \"flexcore\", "
                    "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                    "\"pid\": 0, \"tid\": %zu, \"args\": {\"frame\": %llu, "
                    "\"cell\": %u, \"aux\": %u}}",
                    to_string(span.stage), ts_us, dur_us, span.track,
                    static_cast<unsigned long long>(span.frame_id), span.cell,
                    span.aux);
      out += buf;
    }
  }
  out += "\n], \"displayTimeUnit\": \"ns\"}\n";
  return out;
}

std::string chrome_trace_json() { return chrome_trace_json(drain_spans()); }

bool export_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int rc = std::fclose(f);
  return written == json.size() && rc == 0;
}

}  // namespace flexcore::obs
