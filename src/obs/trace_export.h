// Chrome/Perfetto trace-event export of the flight recorder's rings.
//
// chrome_trace_json() drains every span ring (obs::drain_spans) and renders
// the Chrome trace-event JSON format — open the file at ui.perfetto.dev or
// chrome://tracing.  One trace "thread" (tid) per recorded ring, named by
// set_thread_track ("shard0", "dispatcher1", ...); duration spans become
// ph:"X" complete events, control decisions ph:"i" instant events.  Events
// are emitted sorted by start timestamp, so per-tid timestamps are
// monotonic by construction (CI validates this).
//
// Control-plane only: drains, locks, allocates — never call on a hot path.
#pragma once

#include <string>

#include "obs/obs.h"

namespace flexcore::obs {

/// Renders a drained TraceSnapshot as Chrome trace-event JSON.
std::string chrome_trace_json(const TraceSnapshot& snapshot);

/// Drains the rings and renders them (chrome_trace_json(drain_spans())).
std::string chrome_trace_json();

/// Drains the rings and writes the JSON to `path`; false on I/O failure.
bool export_chrome_trace(const std::string& path);

}  // namespace flexcore::obs
