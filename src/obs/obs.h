// Flight-recorder observability: per-thread span rings + event counters.
//
// The paper's claim is a latency/throughput/accuracy trade-off navigated at
// runtime; this subsystem makes that navigation visible without perturbing
// it.  Two primitives, both safe on the hot path:
//
//   * Spans — fixed-capacity per-thread ring buffers of (stage, cell,
//     frame, t0, t1) records with steady-clock nanosecond timestamps.
//     Recording is wait-free for the owning thread (each thread writes only
//     its own ring; slots are seqlock-validated so a concurrent drain never
//     reads a torn span) and allocation-free after the thread's first
//     record (ring registration is the one cold-path lock + allocation —
//     warm it up before entering a hot_path_guard scope).
//   * Counters — process-global monotonic relaxed atomics (frames shed per
//     degrade-ladder rung, i16 boundary rescans, SIC fallbacks,
//     preprocessing reuse hits/misses, shard merge fan-ins, ...).
//
// Gating, coarse to fine:
//   * FLEXCORE_OBS (compile time): 0 = everything compiles out (the inline
//     wrappers below become empty), 1 = counters only, 2 = counters +
//     spans.  Default 2; set via -DFLEXCORE_OBS=<n> (CMake option).
//   * Runtime sampling: spans are recorded only for frames whose TraceCtx
//     was sampled by begin_frame() — every sample_every-th frame, 0 (the
//     default) disabling span recording entirely.  Counters are always on
//     at level >= 1.
//   * Environment: FLEXCORE_OBS_TRACE=1 enables tracing at process start
//     (FLEXCORE_OBS_SAMPLE=<n> sets the sampling period, default 1;
//     FLEXCORE_OBS_RING=<n> the per-thread ring capacity) — production
//     benches turn tracing on without a recompile.
//
// Frames are correlated across threads by obs::TraceCtx, decided ONCE at
// the outermost submit (ShardedRuntime::submit or Runtime::submit — see
// FrameJob::trace) so the shard fabric, the dispatcher and the pipeline all
// agree on whether a frame is sampled and which id it carries.
//
// Draining (drain_spans / metrics_snapshot) and exporting
// (obs/trace_export.h) are control-plane operations: they lock the ring
// registry and may allocate — never call them from a hot path.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#ifndef FLEXCORE_OBS
#define FLEXCORE_OBS 2
#endif

namespace flexcore::obs {

/// Compile-time observability level (see file comment).
inline constexpr int kLevel = FLEXCORE_OBS;

/// Stage taxonomy of one frame's journey through the serving layers.
/// Span names in exported traces and the indices of the per-stage latency
/// histograms in api::RuntimeStats both follow this enum.
enum class Stage : std::uint8_t {
  kSubmit = 0,       ///< admission: submit() entry -> enqueued (blocking wait)
  kQueueWait,        ///< enqueued -> picked by a dispatcher / run_one
  kShardPartialQr,   ///< decentralized per-cluster partial QR + merge
  kPreprocess,       ///< per-subcarrier QR + path selection
  kPathGrid,         ///< the fused subcarrier x vector x path task grid
  kReconstruct,      ///< winner reconstruction + SIC rescue
  kComplete,         ///< whole frame: submit -> ticket completion
  kControl,          ///< control-plane decision (instant event)
};
inline constexpr std::size_t kStageCount = 8;
const char* to_string(Stage stage);

/// Monotonic process-global event counters (level >= 1).
enum class Counter : std::uint8_t {
  kFramesSubmitted = 0,  ///< frames enqueued (drops excluded)
  kFramesCompleted,      ///< frames completed kDone
  kFramesDropped,        ///< rejected by kDropNewest admission
  kFramesExpired,        ///< shed by a deadline (queue-side or dispatch)
  kFramesFailed,         ///< detection threw
  kReconfigsApplied,     ///< detector swaps adopted at the frame boundary
  kPreprocReuseHits,     ///< detect_frame reused cached preprocessing
  kPreprocReuseMisses,   ///< detect_frame re-preprocessed
  kSicFallbacks,         ///< vectors rescued by plain SIC
  kI16BoundaryRescans,   ///< i16-tier winners re-derived by an exact rescan
  kShardMergeFanins,     ///< shard partial-QR results merged (one per
                         ///< cluster per sharded frame)
  kControlDecisions,     ///< FeedbackLoop decisions emitted
  kFramesQuarantined,    ///< frames completed kQuarantined (numeric faults)
  kShardRetries,         ///< shard-stage fan-outs re-run after a shard fault
  kShardBypasses,        ///< frames rerouted past a failed/stalled shard
                         ///< fabric (merged-monolithic fallback)
  kWatchdogTransitions,  ///< per-cell health state changes (CellHealth)
  kFaultsInjected,       ///< faults injected by fault::Injector
};
inline constexpr std::size_t kCounterCount = 17;
const char* to_string(Counter counter);

/// Degrade-ladder rungs tracked by the per-rung shed counters (a
/// load-degrade decision at degrade_step s bumps rung s; steps past the
/// end fold into the last rung).
inline constexpr std::size_t kMaxLadderRungs = 12;

/// Trigger taxonomy of control-plane decisions (control::Decision::reason),
/// packed into the aux field of kControl events.
enum class ControlReason : std::uint8_t {
  kInit = 0, kSnr, kError, kLoadDegrade, kLoadRestore, kOther,
};
const char* to_string(ControlReason reason);
ControlReason control_reason_from(const char* reason);

/// Per-frame trace identity, decided once at the outermost submit and
/// carried through the shard fabric, dispatcher and pipeline in
/// FrameJob::trace.  decided == false means "nobody sampled this frame
/// yet" — the first layer that sees it calls begin_frame().
struct TraceCtx {
  std::uint64_t id = 0;     ///< process-global frame sequence (1-based)
  std::uint32_t cell = 0;   ///< submitting cell id
  bool decided = false;     ///< begin_frame() ran for this frame
  bool sampled = false;     ///< spans of this frame are recorded
};

/// Runtime knobs (see file comment for the matching environment variables).
struct ObsConfig {
  /// Record spans for every n-th frame; 0 disables span recording.
  std::uint32_t sample_every = 0;
  /// Per-thread ring capacity in spans (rounded up to a power of two).
  /// Applies to rings created after configure(); reset_for_test() resizes
  /// existing rings.
  std::size_t ring_capacity = 1024;
};

/// One drained span.  Timestamps are steady-clock nanoseconds since the
/// process obs epoch (now_ns()'s zero).
struct SpanRecord {
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;
  std::uint64_t frame_id = 0;
  std::uint32_t aux = 0;      ///< stage-specific (shard id, ControlReason)
  std::uint32_t cell = 0;
  std::size_t track = 0;      ///< index into TraceSnapshot::tracks
  Stage stage = Stage::kSubmit;
  bool instant = false;       ///< point event (kControl), not a duration
};

/// Everything currently retained by the rings, time-sorted, plus the
/// per-ring display names ("shard0", "dispatcher1", "thread3", ...).
struct TraceSnapshot {
  std::vector<std::string> tracks;
  std::vector<SpanRecord> spans;
};

/// Point-in-time copy of every counter (monotonic since process start or
/// the last reset_for_test()).
struct MetricsSnapshot {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::uint64_t, kMaxLadderRungs> shed_per_rung{};
  std::uint64_t spans_recorded = 0;  ///< spans ever written, all rings
  std::uint64_t spans_retained = 0;  ///< spans currently held by the rings
};

namespace detail {
// Out-of-line implementations; reach them through the level-gated inline
// wrappers below so FLEXCORE_OBS=0 compiles every call site away.
void counter_add_impl(Counter counter, std::uint64_t n);
void shed_ladder_rung_impl(std::size_t rung);
void record_span_impl(Stage stage, std::uint64_t t0_ns, std::uint64_t t1_ns,
                      const TraceCtx& ctx, std::uint32_t aux, bool instant);
TraceCtx begin_frame_impl(std::uint32_t cell);
}  // namespace detail

/// Steady-clock nanoseconds since the process obs epoch.  Usable at every
/// level (benches timestamp with it even when tracing is compiled out).
std::uint64_t now_ns();

/// Converts an already-captured steady-clock time_point to the same scale
/// as now_ns() — the runtime spans reuse the timestamps it takes anyway.
std::uint64_t to_ns(std::chrono::steady_clock::time_point tp);

/// Bumps a monotonic counter (relaxed atomic; wait-free, no-op at level 0).
inline void counter_add(Counter counter, std::uint64_t n = 1) {
  if constexpr (kLevel >= 1) detail::counter_add_impl(counter, n);
  else { (void)counter; (void)n; }
}

/// Records one frame shed at degrade-ladder rung `rung` (level >= 1).
inline void shed_ladder_rung(std::size_t rung) {
  if constexpr (kLevel >= 1) detail::shed_ladder_rung_impl(rung);
  else (void)rung;
}

/// True when this frame's spans should be recorded — the ONE check hot
/// paths make before touching the clock.  Constant-folds to false at
/// level < 2.
inline bool want_span(const TraceCtx& ctx) {
  if constexpr (kLevel >= 2) return ctx.sampled;
  else { (void)ctx; return false; }
}

/// Records one duration span into the calling thread's ring.  Wait-free
/// and allocation-free except for the thread's FIRST span (ring
/// registration: one lock + one allocation — keep it out of guarded
/// steady-state regions by warming up first).  Call only when
/// want_span(ctx) — the wrapper does not re-check sampling.
inline void record_span(Stage stage, std::uint64_t t0_ns, std::uint64_t t1_ns,
                        const TraceCtx& ctx, std::uint32_t aux = 0) {
  if constexpr (kLevel >= 2) {
    detail::record_span_impl(stage, t0_ns, t1_ns, ctx, aux, false);
  } else {
    (void)stage; (void)t0_ns; (void)t1_ns; (void)ctx; (void)aux;
  }
}

/// Records one instant (point) event — control-plane decisions.
inline void record_instant(Stage stage, std::uint64_t t_ns,
                           const TraceCtx& ctx, std::uint32_t aux = 0) {
  if constexpr (kLevel >= 2) {
    detail::record_span_impl(stage, t_ns, t_ns, ctx, aux, true);
  } else {
    (void)stage; (void)t_ns; (void)ctx; (void)aux;
  }
}

/// Decides a frame's trace identity: assigns the process-global frame id
/// and the sampling verdict (every sample_every-th frame).  Atomics only —
/// safe under the runtime lock and on hot paths.
inline TraceCtx begin_frame(std::uint32_t cell) {
  if constexpr (kLevel >= 2) return detail::begin_frame_impl(cell);
  TraceCtx ctx;
  ctx.decided = true;
  ctx.cell = cell;
  return ctx;
}

/// True when span recording is live (level >= 2 and sample_every > 0).
bool tracing_enabled();

/// Applies runtime knobs (sampling takes effect immediately; ring capacity
/// for rings created afterwards).  Control-plane: locks.
void configure(const ObsConfig& cfg);
ObsConfig current_config();

/// Names the calling thread's trace track ("shard0", "dispatcher1", ...).
/// Cold-path: may lock and allocate (call at thread start).  A thread that
/// never sets a name gets "thread<k>" in registration order.
void set_thread_track(const char* name);

/// Copies every retained span out of every ring, sorted by start time.
/// Concurrent writers are tolerated (torn or overwritten slots are
/// skipped); for a deterministic snapshot, quiesce recording threads
/// first.  Control-plane: locks and allocates.
TraceSnapshot drain_spans();

/// Counter snapshot (always consistent; relaxed reads).
MetricsSnapshot metrics_snapshot();

/// Prometheus-style "name value" lines, one per counter/rung.
std::string metrics_to_text(const MetricsSnapshot& snapshot);
/// The same snapshot as a JSON object.
std::string metrics_to_json(const MetricsSnapshot& snapshot);

/// Test hook: zeroes every counter, empties every ring (resizing them to
/// cfg.ring_capacity), resets the frame-id/sampling sequence and applies
/// `cfg`.  Callers MUST quiesce all recording threads first — resizing a
/// ring under a live writer is a race.  Control-plane only.
void reset_for_test(const ObsConfig& cfg = {});

}  // namespace flexcore::obs
